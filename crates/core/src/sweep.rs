//! Parallel scenario sweeps over shared compiled artifacts.
//!
//! The paper's headline figures (15–20) all sweep the price-conscious
//! router across a grid of what-ifs — distance thresholds, reaction delays,
//! elasticity models, bandwidth regimes, and (Figures 15–19) *where the
//! clusters are*. Every grid point is a full trace replay, so a
//! [`ScenarioSweep`] runs such a grid as one unit: everything that is
//! constant per (deployment, trace, prices) is compiled exactly once into a
//! [`CompiledArtifacts`] cache — one [`BillingMatrix`] and one
//! [`CompiledPreferences`] per distinct deployment, one per-delay
//! [`PriceTable`] view per (deployment, reaction delay) — and shared
//! immutably across a small pool of scoped worker threads.
//!
//! Grids may vary the **deployment** as well as the configuration and
//! policy: register alternative cluster sets with
//! [`ScenarioSweep::add_deployment`] and place points on them with
//! [`ScenarioSweep::add_point_on`]. All deployments are routed over the
//! same trace and price set (the trace is per-client-state, so it is
//! deployment-independent; the price set must cover every hub any
//! deployment uses).
//!
//! Results come back either as a buffered [`SweepReport`] from
//! [`ScenarioSweep::execute`], or incrementally through
//! [`ScenarioSweep::execute_streaming`], which invokes a callback with each
//! [`SweepResult`] as workers finish — in completion order, not grid order
//! — so very large grids can be consumed cell-by-cell without holding every
//! report in memory. Both take a [`RunOptions`], whose
//! [`reuse_artifacts`](RunOptions::reuse_artifacts) option shares one
//! compiled-artifact cache across a sequence of sweeps. The report
//! serializes through the same dependency-free JSON module as individual
//! [`SimulationReport`]s — CI diffs one against a golden file so engine
//! refactors cannot silently change results.
//!
//! ```
//! use wattroute::prelude::*;
//! use wattroute::sweep::ScenarioSweep;
//!
//! let start = SimHour::from_date(2008, 12, 19);
//! let scenario = Scenario::custom_window(7, HourRange::new(start, start.plus_hours(24)));
//! let mut sweep = ScenarioSweep::new(&scenario.clusters, &scenario.trace, &scenario.prices);
//! for threshold in [0.0, 1500.0] {
//!     sweep.add_point(format!("t{threshold}"), scenario.config.clone(), move || {
//!         PriceConsciousPolicy::with_distance_threshold(threshold)
//!     });
//! }
//! let report = sweep.execute(RunOptions::new());
//! assert_eq!(report.runs.len(), 2);
//! assert!(report.get("t1500").unwrap().total_cost_dollars > 0.0);
//! ```

use crate::json::{self, JsonValue};
use crate::report::{ReportDecodeError, SimulationReport};
use crate::run::RunOptions;
use crate::simulation::{step_coverage, Simulation, SimulationConfig};
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use wattroute_geo::topology::Topology;
use wattroute_market::price_table::{BillingMatrix, PriceTable};
use wattroute_market::time::HourRange;
use wattroute_market::types::PriceSet;
use wattroute_routing::constraints::{ConstraintSet, TierCaps};
use wattroute_routing::policy::RoutingPolicy;
use wattroute_routing::price_conscious::CompiledPreferences;
use wattroute_workload::hierarchy::site_clusters;
use wattroute_workload::trace::Trace;
use wattroute_workload::ClusterSet;

/// Builds a fresh policy instance for one sweep run. Factories (not policy
/// instances) are what the grid stores, because runs execute concurrently
/// and policies are stateful (`allocate` takes `&mut self`).
pub type PolicyFactory = Box<dyn Fn() -> Box<dyn RoutingPolicy> + Send + Sync>;

/// The label every implicit (single-deployment) sweep uses for its
/// deployment.
pub const DEFAULT_DEPLOYMENT: &str = "default";

/// One deployment registered with a sweep: a label and the cluster set it
/// names. Most deployments borrow a caller-owned [`ClusterSet`]
/// (`Cow::Borrowed`); deployments derived on the fly — such as the
/// site-level flattening of a [`Topology`] registered through
/// [`ScenarioSweep::add_topology_axis`] — are owned by the sweep itself
/// (`Cow::Owned`).
pub struct Deployment<'a> {
    /// Stable label identifying the deployment in run results.
    pub label: String,
    /// The cluster set routed over.
    pub clusters: Cow<'a, ClusterSet>,
}

/// One grid point: a label, the deployment it routes over, a simulation
/// configuration, and the policy to run under it.
pub struct SweepPoint {
    /// Stable label identifying the point in the [`SweepReport`].
    pub label: String,
    /// Index of the deployment (see [`ScenarioSweep::add_deployment`]) this
    /// point routes over.
    pub deployment: usize,
    /// The configuration for this run.
    pub config: SimulationConfig,
    /// Factory for the policy to run.
    pub policy: PolicyFactory,
}

/// Everything a sweep compiles once and shares read-only across its worker
/// threads:
///
/// * one [`BillingMatrix`] per distinct deployment hub list (delay- and
///   policy-independent);
/// * one [`CompiledPreferences`] per distinct deployment hub list (the
///   price-conscious router's ranked-distance geometry — state-list
///   dependent, but a sweep has a single trace and therefore a single
///   state list);
/// * one [`PriceTable`] per (deployment hub list, reaction delay): a thin
///   delayed-price view over the shared billing matrix.
///
/// Deployments whose hub lists are equal (for example, capacity-rescaled
/// variants of one deployment) share all three. Before this cache existed
/// every run compiled its own preferences and every distinct delay stored
/// its own copy of the billing matrix.
///
/// The cache **persists across sweeps**: [`ScenarioSweep::execute_streaming`]
/// takes one by `&mut` and only compiles what an earlier sweep (over the
/// same trace and price set) has not already compiled. The deployment
/// optimizer leans on this — every capacity split over one hub list shares
/// a single billing matrix and preference geometry across *all* search
/// iterations, and [`Self::hub_list_hits`] / [`Self::hub_list_misses`]
/// report how often the cache paid off.
#[derive(Default)]
pub struct CompiledArtifacts {
    /// Deployment index → artifact slot for the **most recently extended**
    /// grid (deployments with equal hub lists share a slot). `None` for
    /// deployments no grid point references.
    slot_of: Vec<Option<usize>>,
    billing: Vec<Arc<BillingMatrix>>,
    preferences: Vec<Arc<CompiledPreferences>>,
    tables: BTreeMap<(usize, u64), PriceTable>,
    hub_list_hits: usize,
    hub_list_misses: usize,
    /// Shape fingerprint of the scenario the cache was first extended
    /// over: (step-coverage range, client-state count, price-series
    /// count). Artifacts are keyed by hub list only, so reusing a cache
    /// across scenarios would silently serve wrong prices/geometry; the
    /// fingerprint turns the most likely misuses into a panic instead.
    scenario: Option<(HourRange, usize, usize)>,
}

impl CompiledArtifacts {
    /// An empty cache, ready to be handed to
    /// [`ScenarioSweep::execute_streaming`] (and kept across sweeps).
    pub fn new() -> Self {
        Self::default()
    }

    /// Compile the artifacts a grid needs: `cells` lists the
    /// (deployment index, reaction delay) of every grid point. Each
    /// artifact is compiled at most once however many cells reference it.
    pub fn compile(
        deployments: &[Deployment<'_>],
        trace: &Trace,
        prices: &PriceSet,
        cells: &[(usize, u64)],
    ) -> Self {
        let mut artifacts = Self::new();
        artifacts.extend(deployments, trace, prices, cells);
        artifacts
    }

    /// Compile whatever the given grid needs that this cache does not hold
    /// yet, and re-point the deployment-index mapping at the new grid's
    /// deployments. Deployments whose hub list was already compiled — by
    /// this call or any earlier one — reuse the cached artifacts
    /// (counted in [`Self::hub_list_hits`]).
    ///
    /// All grids extending one cache must share the trace's state list and
    /// the price set, as sweeps over one scenario do; the per-hub-list
    /// keying is only valid under that invariant.
    ///
    /// # Panics
    /// Panics if the grid's scenario *shape* (trace coverage, state
    /// count, price-series count) differs from the one the cache was
    /// first extended over — the cheap, reliable part of the invariant.
    pub fn extend(
        &mut self,
        deployments: &[Deployment<'_>],
        trace: &Trace,
        prices: &PriceSet,
        cells: &[(usize, u64)],
    ) {
        let range = step_coverage(trace);
        let fingerprint = (range, trace.states.len(), prices.series.len());
        match &self.scenario {
            None => self.scenario = Some(fingerprint),
            Some(seen) => assert_eq!(
                *seen, fingerprint,
                "CompiledArtifacts cache reused across scenarios: caches are keyed by hub \
                 list and must only be shared by sweeps over one trace and price set"
            ),
        }
        self.slot_of = vec![None; deployments.len()];
        for &(deployment, delay_hours) in cells {
            let clusters: &ClusterSet = &deployments[deployment].clusters;
            let slot = match self.slot_of[deployment] {
                Some(slot) => slot,
                None => {
                    let hub_ids = clusters.hub_ids();
                    let slot = match self.billing.iter().position(|b| b.hubs() == hub_ids) {
                        Some(slot) => {
                            self.hub_list_hits += 1;
                            wattroute_obs::counter!("sweep.artifact_cache.hits").inc();
                            slot
                        }
                        None => {
                            self.hub_list_misses += 1;
                            wattroute_obs::counter!("sweep.artifact_cache.misses").inc();
                            self.billing
                                .push(Arc::new(BillingMatrix::build(prices, &hub_ids, range)));
                            self.preferences.push(Arc::new(CompiledPreferences::build(
                                clusters,
                                &trace.states,
                            )));
                            self.billing.len() - 1
                        }
                    };
                    self.slot_of[deployment] = Some(slot);
                    slot
                }
            };
            self.tables.entry((slot, delay_hours)).or_insert_with(|| {
                PriceTable::delayed_view(self.billing[slot].clone(), prices, delay_hours)
            });
        }
        if let Some(rate) = self.hit_rate() {
            wattroute_obs::gauge!("sweep.artifact_cache.hit_rate").set(rate);
        }
    }

    /// The compiled price table for a (deployment, reaction delay) cell.
    ///
    /// # Panics
    /// Panics if the cell was not in the grid the artifacts were compiled
    /// for.
    pub fn table(&self, deployment: usize, delay_hours: u64) -> &PriceTable {
        let slot = self.slot_of[deployment].expect("deployment has a compiled slot");
        self.tables.get(&(slot, delay_hours)).expect("cell was compiled")
    }

    /// The shared ranked-distance geometry for a deployment.
    ///
    /// # Panics
    /// Panics if no grid point referenced the deployment.
    pub fn preferences(&self, deployment: usize) -> &Arc<CompiledPreferences> {
        &self.preferences[self.slot_of[deployment].expect("deployment has a compiled slot")]
    }

    /// Number of billing matrices compiled (== number of distinct
    /// referenced hub lists).
    pub fn billing_matrices(&self) -> usize {
        self.billing.len()
    }

    /// Number of ranked-distance geometries compiled.
    pub fn compiled_preferences(&self) -> usize {
        self.preferences.len()
    }

    /// Number of per-delay price-table views compiled (== number of
    /// distinct (hub list, delay) pairs).
    pub fn delayed_views(&self) -> usize {
        self.tables.len()
    }

    /// How many deployment resolutions found their hub list already
    /// compiled — within one grid or by an earlier sweep extending this
    /// cache.
    pub fn hub_list_hits(&self) -> usize {
        self.hub_list_hits
    }

    /// How many deployment resolutions had to compile a new hub list.
    pub fn hub_list_misses(&self) -> usize {
        self.hub_list_misses
    }

    /// Fraction of deployment resolutions served from cache (`None` before
    /// anything was resolved).
    pub fn hit_rate(&self) -> Option<f64> {
        let lookups = self.hub_list_hits + self.hub_list_misses;
        (lookups > 0).then(|| self.hub_list_hits as f64 / lookups as f64)
    }
}

/// A grid of simulation runs over one trace and price set (and one or more
/// deployments), executed on a worker pool with all compiled artifacts
/// shared.
pub struct ScenarioSweep<'a> {
    deployments: Vec<Deployment<'a>>,
    trace: &'a Trace,
    prices: &'a PriceSet,
    points: Vec<SweepPoint>,
    threads: Option<usize>,
}

impl<'a> ScenarioSweep<'a> {
    /// Start an empty sweep over a deployment, trace, and price set. The
    /// given cluster set becomes deployment `0`, labelled
    /// [`DEFAULT_DEPLOYMENT`]; register alternatives with
    /// [`Self::add_deployment`].
    pub fn new(clusters: &'a ClusterSet, trace: &'a Trace, prices: &'a PriceSet) -> Self {
        Self {
            deployments: vec![Deployment {
                label: DEFAULT_DEPLOYMENT.into(),
                clusters: Cow::Borrowed(clusters),
            }],
            trace,
            prices,
            points: Vec::new(),
            threads: None,
        }
    }

    /// Pin the worker-pool size (default: available parallelism, capped by
    /// the number of grid points).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "worker pool needs at least one thread");
        self.threads = Some(threads);
        self
    }

    /// Register an alternative deployment and return its index for
    /// [`Self::add_point_on`]. The price set must cover every hub the
    /// deployment uses (validated when the sweep runs).
    pub fn add_deployment(&mut self, label: impl Into<String>, clusters: &'a ClusterSet) -> usize {
        self.deployments
            .push(Deployment { label: label.into(), clusters: Cow::Borrowed(clusters) });
        self.deployments.len() - 1
    }

    /// Register a deployment the sweep owns (for cluster sets derived on
    /// the fly rather than borrowed from the caller) and return its index.
    pub fn add_owned_deployment(
        &mut self,
        label: impl Into<String>,
        clusters: ClusterSet,
    ) -> usize {
        self.deployments.push(Deployment { label: label.into(), clusters: Cow::Owned(clusters) });
        self.deployments.len() - 1
    }

    /// Number of deployments registered (including the default).
    pub fn num_deployments(&self) -> usize {
        self.deployments.len()
    }

    /// Add one grid point on the default deployment.
    pub fn add_point<F, P>(&mut self, label: impl Into<String>, config: SimulationConfig, policy: F)
    where
        F: Fn() -> P + Send + Sync + 'static,
        P: RoutingPolicy + 'static,
    {
        self.add_point_on(0, label, config, policy);
    }

    /// Add one grid point on a registered deployment.
    ///
    /// # Panics
    /// Panics if `deployment` is not a registered deployment index.
    pub fn add_point_on<F, P>(
        &mut self,
        deployment: usize,
        label: impl Into<String>,
        config: SimulationConfig,
        policy: F,
    ) where
        F: Fn() -> P + Send + Sync + 'static,
        P: RoutingPolicy + 'static,
    {
        self.add_boxed_point_on(deployment, label, config, Box::new(move || Box::new(policy())));
    }

    /// Sweep the **constraint regime** as a grid dimension: add one point
    /// per `(variant label, ConstraintSet)` pair, each running `config`
    /// with its constraint set replaced by the variant's and labelled
    /// `"{label}@{variant}"`. Pair with
    /// [`CalibratedScenario::constraints`](crate::constraints::CalibratedScenario::constraints)
    /// to grid over cap multipliers (the savings-vs-slack curve of
    /// `fig_bandwidth`), or with
    /// [`ConstraintSet::unconstrained`] for a constrained-vs-unconstrained
    /// axis.
    ///
    /// Constraints are run-state, not compiled geometry: however many
    /// variants a grid sweeps, the deployment's artifacts (billing matrix,
    /// preference geometry, delayed views) are compiled exactly once —
    /// pinned by `sweep_compile_counts`.
    pub fn add_constraint_axis<F, P>(
        &mut self,
        deployment: usize,
        label: impl AsRef<str>,
        config: SimulationConfig,
        variants: impl IntoIterator<Item = (String, ConstraintSet)>,
        policy: F,
    ) where
        F: Fn() -> P + Clone + Send + Sync + 'static,
        P: RoutingPolicy + 'static,
    {
        let label = label.as_ref();
        for (variant, constraints) in variants {
            self.add_point_on(
                deployment,
                format!("{label}@{variant}"),
                config.clone().with_constraints(constraints),
                policy.clone(),
            );
        }
    }

    /// Sweep the **topology regime** as a grid dimension: flatten the
    /// tree's sites into an owned site-level deployment (one cluster per
    /// site, metros sharing hubs) and add a `"{label}@flat"` point that
    /// routes it with sites individually capped only. When the topology
    /// carries metro/region bandwidth caps a second `"{label}@tiered"`
    /// point is added whose constraint set enforces them through
    /// [`TierCaps`], so one grid quantifies what the aggregation layers
    /// cost. Returns the registered deployment's index so callers can pin
    /// further points on the same site set.
    ///
    /// The price set must cover every hub the topology's metros use; the
    /// trace is per-client-state and therefore topology-independent.
    pub fn add_topology_axis<F, P>(
        &mut self,
        topology: &Topology,
        label: impl AsRef<str>,
        config: SimulationConfig,
        policy: F,
    ) -> usize
    where
        F: Fn() -> P + Clone + Send + Sync + 'static,
        P: RoutingPolicy + 'static,
    {
        let label = label.as_ref();
        let deployment =
            self.add_owned_deployment(format!("{label}-sites"), site_clusters(topology));
        self.add_point_on(deployment, format!("{label}@flat"), config.clone(), policy.clone());
        if let Some(tiers) = TierCaps::from_topology(topology) {
            let constraints = config.constraints.clone().with_tier_caps(tiers);
            self.add_point_on(
                deployment,
                format!("{label}@tiered"),
                config.with_constraints(constraints),
                policy,
            );
        }
        deployment
    }

    /// Add a pre-boxed grid point on the default deployment (for
    /// heterogeneous policy grids).
    pub fn add_boxed_point(
        &mut self,
        label: impl Into<String>,
        config: SimulationConfig,
        policy: PolicyFactory,
    ) {
        self.add_boxed_point_on(0, label, config, policy);
    }

    /// Add a pre-boxed grid point on a registered deployment.
    ///
    /// # Panics
    /// Panics if `deployment` is not a registered deployment index.
    pub fn add_boxed_point_on(
        &mut self,
        deployment: usize,
        label: impl Into<String>,
        config: SimulationConfig,
        policy: PolicyFactory,
    ) {
        assert!(
            deployment < self.deployments.len(),
            "deployment index {deployment} is not registered (have {})",
            self.deployments.len()
        );
        self.points.push(SweepPoint { label: label.into(), deployment, config, policy });
    }

    /// Number of grid points queued.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Compile the shared artifacts and execute every grid point, in
    /// parallel, returning reports in grid order.
    ///
    /// Honoured options: [`RunOptions::reuse_artifacts`] (a caller-owned
    /// compiled-artifact cache shared across sweeps). A configuration
    /// override or load recorder belongs to the single-run layers and
    /// panics here (see [`crate::run`]).
    pub fn execute(self, options: RunOptions<'_>) -> SweepReport {
        let mut slots: Vec<Option<SweepRun>> = Vec::new();
        slots.resize_with(self.points.len(), || None);
        self.execute_streaming(options, |result| {
            let SweepResult { index, label, deployment, report } = result;
            slots[index] = Some(SweepRun { label, deployment, report });
        });
        let runs = slots.into_iter().map(|slot| slot.expect("every grid point ran")).collect();
        SweepReport { runs }
    }

    /// Compile the shared artifacts and execute every grid point in
    /// parallel, delivering each cell's [`SweepResult`] to `on_result` as
    /// soon as its worker finishes — in completion order, not grid order.
    /// Takes the same [`RunOptions`] as [`Self::execute`].
    ///
    /// Unlike [`Self::execute`], nothing accumulates: delivery goes
    /// through a bounded channel holding at most one completed result per
    /// worker, so a grid of a million cells keeps a handful of reports in
    /// flight plus whatever the callback retains. The callback runs on the
    /// calling thread, so it may borrow surrounding state mutably; a
    /// callback slower than the simulations back-pressures the workers
    /// rather than buffering results without limit.
    pub fn execute_streaming<F>(self, options: RunOptions<'_>, on_result: F)
    where
        F: FnMut(SweepResult),
    {
        let RunOptions { config, recorder, artifacts } = options;
        assert!(
            config.is_none(),
            "RunOptions::with_config applies to single scenario runs; \
             each sweep point already carries its own configuration"
        );
        assert!(
            recorder.is_none(),
            "RunOptions::record_loads applies to single simulation runs; \
             a sweep's cells run in parallel and have no one load series"
        );
        match artifacts {
            Some(cache) => self.stream_into(cache, on_result),
            None => {
                let mut fresh = CompiledArtifacts::new();
                self.stream_into(&mut fresh, on_result);
            }
        }
    }

    /// The worker pool shared by every execution mode: compile the shared
    /// artifacts into `artifacts` (reusing whatever earlier sweeps left
    /// there — the cache is keyed by hub list, so every sweep extending one
    /// cache must use the same trace and price set), then run every grid
    /// point and deliver results in completion order.
    fn stream_into<F>(self, artifacts: &mut CompiledArtifacts, mut on_result: F)
    where
        F: FnMut(SweepResult),
    {
        let cells: Vec<(usize, u64)> =
            self.points.iter().map(|p| (p.deployment, p.config.reaction_delay_hours)).collect();
        artifacts.extend(&self.deployments, self.trace, self.prices, &cells);

        let workers = self
            .threads
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
            .clamp(1, self.points.len().max(1));

        let counter = AtomicUsize::new(0);
        let next = &counter;
        let points = &self.points;
        let deployments = &self.deployments;
        let artifacts_ref: &CompiledArtifacts = artifacts;
        let trace = self.trace;
        let (tx, rx) = mpsc::sync_channel::<SweepResult>(workers);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= points.len() {
                        break;
                    }
                    let point = &points[i];
                    let deployment = &deployments[point.deployment];
                    let table =
                        artifacts_ref.table(point.deployment, point.config.reaction_delay_hours);
                    let sim = Simulation::with_price_table(
                        &deployment.clusters,
                        trace,
                        Cow::Borrowed(table),
                        point.config.clone(),
                    );
                    let mut policy = (point.policy)();
                    policy.attach_preferences(artifacts_ref.preferences(point.deployment));
                    let cell_span = wattroute_obs::span!("sweep.cell");
                    let report = sim.execute(policy.as_mut(), RunOptions::new());
                    drop(cell_span);
                    let result = SweepResult {
                        index: i,
                        label: point.label.clone(),
                        deployment: deployment.label.clone(),
                        report,
                    };
                    if tx.send(result).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for result in rx {
                on_result(result);
            }
        });
    }
}

/// One completed sweep cell as delivered by
/// [`ScenarioSweep::execute_streaming`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// Position of the cell in grid order (the order points were added).
    pub index: usize,
    /// The grid point's label.
    pub label: String,
    /// Label of the deployment the cell routed over.
    pub deployment: String,
    /// The simulation report it produced.
    pub report: SimulationReport,
}

impl SweepResult {
    /// Encode as a JSON value (one self-contained object per cell — the
    /// line format of [`crate::jsonl`]).
    pub fn to_json_value(&self) -> JsonValue {
        json::object([
            ("index", JsonValue::Number(self.index as f64)),
            ("label", JsonValue::String(self.label.clone())),
            ("deployment", JsonValue::String(self.deployment.clone())),
            ("report", self.report.to_json_value()),
        ])
    }

    /// Decode from a JSON value produced by [`Self::to_json_value`].
    pub fn from_json_value(v: &JsonValue) -> Result<Self, ReportDecodeError> {
        let index = v
            .get("index")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| ReportDecodeError::new("cell missing 'index'"))?;
        // 2^53 bounds what an f64 can hold exactly (and any sane grid).
        if !(index.is_finite() && index >= 0.0 && index.fract() == 0.0 && index <= 9.0e15) {
            return Err(ReportDecodeError::new(format!(
                "cell 'index' is not a non-negative integer: {index}"
            )));
        }
        let label = v
            .get("label")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ReportDecodeError::new("cell missing 'label'"))?
            .to_string();
        let deployment = v
            .get("deployment")
            .and_then(JsonValue::as_str)
            .unwrap_or(DEFAULT_DEPLOYMENT)
            .to_string();
        let report = SimulationReport::from_json_value(
            v.get("report").ok_or_else(|| ReportDecodeError::new("cell missing 'report'"))?,
        )?;
        Ok(Self { index: index as usize, label, deployment, report })
    }
}

/// One completed sweep run.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRun {
    /// The grid point's label.
    pub label: String,
    /// Label of the deployment the run routed over.
    pub deployment: String,
    /// The simulation report it produced.
    pub report: SimulationReport,
}

/// All runs of a sweep, in grid order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// One entry per grid point, in the order the points were added.
    pub runs: Vec<SweepRun>,
}

impl SweepReport {
    /// The report for a labelled grid point, if present.
    pub fn get(&self, label: &str) -> Option<&SimulationReport> {
        self.runs.iter().find(|r| r.label == label).map(|r| &r.report)
    }

    /// The report for a (deployment label, point label) pair, if present —
    /// the lookup to use when a multi-deployment grid reuses point labels
    /// across deployments.
    pub fn get_on(&self, deployment: &str, label: &str) -> Option<&SimulationReport> {
        self.runs.iter().find(|r| r.deployment == deployment && r.label == label).map(|r| &r.report)
    }

    /// Serialize to a compact JSON string.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }

    /// Encode as a JSON value.
    pub fn to_json_value(&self) -> JsonValue {
        json::object([(
            "runs",
            JsonValue::Array(
                self.runs
                    .iter()
                    .map(|r| {
                        json::object([
                            ("label", JsonValue::String(r.label.clone())),
                            ("deployment", JsonValue::String(r.deployment.clone())),
                            ("report", r.report.to_json_value()),
                        ])
                    })
                    .collect(),
            ),
        )])
    }

    /// Deserialize from JSON text produced by [`Self::to_json`].
    pub fn from_json(text: &str) -> Result<Self, ReportDecodeError> {
        let v = JsonValue::parse(text)?;
        let runs = v
            .get("runs")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| ReportDecodeError::new("missing 'runs' array"))?
            .iter()
            .map(|entry| {
                let label = entry
                    .get("label")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| ReportDecodeError::new("run missing 'label'"))?
                    .to_string();
                // Absent in pre-multi-deployment reports; default rather
                // than reject so old golden files stay readable.
                let deployment = entry
                    .get("deployment")
                    .and_then(JsonValue::as_str)
                    .unwrap_or(DEFAULT_DEPLOYMENT)
                    .to_string();
                let report = SimulationReport::from_json_value(
                    entry
                        .get("report")
                        .ok_or_else(|| ReportDecodeError::new("run missing 'report'"))?,
                )?;
                Ok(SweepRun { label, deployment, report })
            })
            .collect::<Result<Vec<_>, ReportDecodeError>>()?;
        Ok(Self { runs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use wattroute_market::time::{HourRange, SimHour};
    use wattroute_routing::baseline::AkamaiLikePolicy;
    use wattroute_routing::price_conscious::PriceConsciousPolicy;

    fn short_scenario() -> Scenario {
        let start = SimHour::from_date(2008, 12, 19);
        Scenario::custom_window(17, HourRange::new(start, start.plus_hours(36)))
    }

    /// A five-cluster east-coast subset of the nine-cluster deployment.
    fn east_coast(of: &ClusterSet) -> ClusterSet {
        ClusterSet::new(
            of.clusters()
                .iter()
                .filter(|c| matches!(c.label.as_str(), "MA" | "NY" | "VA" | "NJ" | "IL"))
                .cloned()
                .collect(),
        )
    }

    #[test]
    fn sweep_matches_sequential_runs_exactly() {
        let s = short_scenario();
        let thresholds = [0.0, 1000.0, 2000.0];

        let mut sweep = ScenarioSweep::new(&s.clusters, &s.trace, &s.prices);
        sweep.add_point("baseline", s.config.clone(), AkamaiLikePolicy::default);
        for t in thresholds {
            sweep.add_point(format!("t{t}"), s.config.clone(), move || {
                PriceConsciousPolicy::with_distance_threshold(t)
            });
        }
        let report = sweep.execute(RunOptions::new());
        assert_eq!(report.runs.len(), 4);
        assert!(report.runs.iter().all(|r| r.deployment == DEFAULT_DEPLOYMENT));

        let sequential_baseline = s.execute(&mut AkamaiLikePolicy::default(), RunOptions::new());
        assert_eq!(report.runs[0].report, sequential_baseline);
        for (i, t) in thresholds.iter().enumerate() {
            let sequential = s
                .execute(&mut PriceConsciousPolicy::with_distance_threshold(*t), RunOptions::new());
            assert_eq!(&report.runs[i + 1].report, &sequential, "threshold {t}");
        }
    }

    #[test]
    fn sweep_shares_tables_across_delays_and_respects_order() {
        let s = short_scenario();
        let mut sweep = ScenarioSweep::new(&s.clusters, &s.trace, &s.prices).with_threads(2);
        for delay in [0u64, 1, 1, 6] {
            sweep.add_point(
                format!("d{delay}-{}", sweep.len()),
                s.config.clone().with_reaction_delay(delay),
                || PriceConsciousPolicy::with_distance_threshold(1500.0),
            );
        }
        let report = sweep.execute(RunOptions::new());
        assert_eq!(report.runs.len(), 4);
        // Grid order is preserved regardless of which worker finished first.
        assert!(report.runs[0].label.starts_with("d0"));
        assert!(report.runs[3].label.starts_with("d6"));
        // Same-delay runs are byte-identical (shared table, same policy).
        assert_eq!(report.runs[1].report, report.runs[2].report);
        // Delay changes routing and therefore cost.
        assert_ne!(
            report.runs[0].report.total_cost_dollars,
            report.runs[3].report.total_cost_dollars
        );
    }

    #[test]
    fn multi_deployment_grid_matches_per_deployment_sequential_runs() {
        let s = short_scenario();
        let east = east_coast(&s.clusters);
        let mut sweep = ScenarioSweep::new(&s.clusters, &s.trace, &s.prices).with_threads(2);
        let east_id = sweep.add_deployment("east", &east);
        for (dep, label) in [(0usize, "nine"), (east_id, "east")] {
            sweep.add_point_on(dep, format!("{label}:pc"), s.config.clone(), || {
                PriceConsciousPolicy::with_distance_threshold(1500.0)
            });
            sweep.add_point_on(dep, format!("{label}:base"), s.config.clone(), || {
                AkamaiLikePolicy::default()
            });
        }
        let report = sweep.execute(RunOptions::new());
        assert_eq!(report.runs.len(), 4);
        assert_eq!(report.runs[0].deployment, DEFAULT_DEPLOYMENT);
        assert_eq!(report.runs[2].deployment, "east");
        assert!(report.get_on("east", "east:pc").is_some());
        assert!(report.get_on("east", "nine:pc").is_none());

        // Each cell is bit-identical to a sequential Simulation over its own
        // deployment (per-run compile, no sharing).
        for (clusters, label) in [(&s.clusters, "nine"), (&east, "east")] {
            let sim = Simulation::new(clusters, &s.trace, &s.prices, s.config.clone());
            let pc = sim.execute(
                &mut PriceConsciousPolicy::with_distance_threshold(1500.0),
                RunOptions::new(),
            );
            let base = sim.execute(&mut AkamaiLikePolicy::default(), RunOptions::new());
            assert_eq!(report.get(&format!("{label}:pc")), Some(&pc));
            assert_eq!(report.get(&format!("{label}:base")), Some(&base));
        }

        // Fewer, more distant clusters cannot serve traffic more cheaply
        // with the same policy and elasticity while obeying capacity.
        assert_ne!(
            report.get("nine:base").unwrap().total_cost_dollars,
            report.get("east:base").unwrap().total_cost_dollars,
        );
    }

    #[test]
    fn constraint_axis_points_match_sequential_constrained_runs() {
        use crate::constraints::CalibratedScenario;

        let s = short_scenario();
        let calibrated = CalibratedScenario::calibrate(&s);
        let multipliers = [1.0, 1.3, f64::INFINITY];

        let mut sweep = ScenarioSweep::new(&s.clusters, &s.trace, &s.prices).with_threads(2);
        sweep.add_constraint_axis(
            0,
            "pc",
            s.config.clone(),
            multipliers
                .iter()
                .map(|&m| (format!("x{m}"), calibrated.constraints(&s.config.constraints, m))),
            || PriceConsciousPolicy::with_distance_threshold(1500.0),
        );
        assert_eq!(sweep.len(), 3);
        let report = sweep.execute(RunOptions::new());

        for &m in &multipliers {
            let config = calibrated.constrained_config(&s.config, m);
            let sequential = s.execute(
                &mut PriceConsciousPolicy::with_distance_threshold(1500.0),
                RunOptions::new().with_config(config),
            );
            assert_eq!(report.get(&format!("pc@x{m}")), Some(&sequential), "multiplier {m}");
        }
        // The ∞ variant is bandwidth-relaxed; the 1.0 variant is not.
        assert!(report.get("pc@x1").unwrap().bandwidth_constrained);
        assert!(!report.get("pc@xinf").unwrap().bandwidth_constrained);
    }

    #[test]
    fn streaming_yields_exactly_the_cells_of_run_in_some_order() {
        fn build<'a>(s: &'a Scenario, east: &'a ClusterSet) -> ScenarioSweep<'a> {
            let mut sweep = ScenarioSweep::new(&s.clusters, &s.trace, &s.prices).with_threads(3);
            let east_id = sweep.add_deployment("east", east);
            for (i, delay) in [0u64, 2, 2, 5].into_iter().enumerate() {
                let dep = if i % 2 == 0 { 0 } else { east_id };
                sweep.add_point_on(
                    dep,
                    format!("cell{i}"),
                    s.config.clone().with_reaction_delay(delay),
                    || PriceConsciousPolicy::with_distance_threshold(1200.0),
                );
            }
            sweep
        }
        let s = short_scenario();
        let east = east_coast(&s.clusters);

        let buffered = build(&s, &east).execute(RunOptions::new());

        let mut streamed: Vec<SweepResult> = Vec::new();
        build(&s, &east).execute_streaming(RunOptions::new(), |r| streamed.push(r));
        assert_eq!(streamed.len(), buffered.runs.len());
        // Every index arrives exactly once, and each cell carries exactly
        // the run that the buffered API reports at that index.
        streamed.sort_by_key(|r| r.index);
        for (i, (got, want)) in streamed.iter().zip(buffered.runs.iter()).enumerate() {
            assert_eq!(got.index, i);
            assert_eq!(got.label, want.label);
            assert_eq!(got.deployment, want.deployment);
            assert_eq!(got.report, want.report);
        }
    }

    #[test]
    fn topology_axis_adds_flat_and_tiered_points_that_match_sequential_runs() {
        use wattroute_geo::topology::Topology;
        use wattroute_market::generator::PriceGenerator;
        use wattroute_market::model::MarketModel;
        use wattroute_workload::hierarchy::site_clusters;
        use wattroute_workload::SyntheticWorkloadConfig;

        let start = SimHour::from_date(2008, 12, 19);
        let range = HourRange::new(start, start.plus_hours(30));
        let trace = SyntheticWorkloadConfig::default().generate(range);
        let prices = PriceGenerator::new(MarketModel::calibrated(), 11).realtime_hourly(range);
        let nine = ClusterSet::akamai_like_nine();
        let config = SimulationConfig::default();

        let capped = Topology::synthetic(5, 40).with_tier_slack(0.8);
        let uncapped = Topology::synthetic(5, 40);

        let mut sweep = ScenarioSweep::new(&nine, &trace, &prices).with_threads(2);
        sweep.add_topology_axis(&capped, "tree", config.clone(), || {
            PriceConsciousPolicy::with_distance_threshold(1500.0)
        });
        sweep.add_topology_axis(&uncapped, "open", config.clone(), || {
            PriceConsciousPolicy::with_distance_threshold(1500.0)
        });
        // Capped tree contributes flat+tiered, uncapped only flat.
        assert_eq!(sweep.len(), 3);
        let report = sweep.execute(RunOptions::new());
        assert!(report.get_on("open-sites", "open@tiered").is_none());

        // The flat point is bit-identical to a sequential run over the
        // flattened site deployment; the tiered point to one with the
        // tree's caps installed.
        let sites = site_clusters(&capped);
        let flat_sim = Simulation::new(&sites, &trace, &prices, config.clone());
        let flat = flat_sim
            .execute(&mut PriceConsciousPolicy::with_distance_threshold(1500.0), RunOptions::new());
        assert_eq!(report.get_on("tree-sites", "tree@flat"), Some(&flat));

        let tiers = wattroute_routing::constraints::TierCaps::from_topology(&capped)
            .expect("capped tree has tier caps");
        let tiered_config =
            config.clone().with_constraints(config.constraints.clone().with_tier_caps(tiers));
        let tiered_sim = Simulation::new(&sites, &trace, &prices, tiered_config);
        let tiered = tiered_sim
            .execute(&mut PriceConsciousPolicy::with_distance_threshold(1500.0), RunOptions::new());
        assert_eq!(report.get_on("tree-sites", "tree@tiered"), Some(&tiered));
    }

    #[test]
    fn artifacts_compile_once_per_deployment_and_delay() {
        let s = short_scenario();
        let east = east_coast(&s.clusters);
        let scaled = s.clusters.scaled(0.5); // same hub list as the default
        let deployments = [
            Deployment { label: "nine".into(), clusters: Cow::Borrowed(&s.clusters) },
            Deployment { label: "east".into(), clusters: Cow::Borrowed(&east) },
            Deployment { label: "scaled".into(), clusters: Cow::Borrowed(&scaled) },
        ];
        // 3 deployments × 2 delays, every cell listed twice over.
        let mut cells = Vec::new();
        for dep in 0..3 {
            for delay in [0u64, 3] {
                cells.push((dep, delay));
                cells.push((dep, delay));
            }
        }
        let artifacts = CompiledArtifacts::compile(&deployments, &s.trace, &s.prices, &cells);
        // "nine" and "scaled" share a hub list, so two distinct hub lists.
        assert_eq!(artifacts.billing_matrices(), 2);
        assert_eq!(artifacts.compiled_preferences(), 2);
        assert_eq!(artifacts.delayed_views(), 2 * 2);
        // Shared slots hand back the same Arc.
        assert!(Arc::ptr_eq(artifacts.preferences(0), artifacts.preferences(2)));
        assert!(!Arc::ptr_eq(artifacts.preferences(0), artifacts.preferences(1)));
        assert!(std::ptr::eq(artifacts.table(0, 3), artifacts.table(2, 3)));
        assert_eq!(artifacts.table(1, 0).hubs(), &east.hub_ids()[..]);
    }

    #[test]
    fn shared_cache_is_reused_across_sweeps_and_results_are_unchanged() {
        fn build<'a>(s: &'a Scenario, east: &'a ClusterSet) -> ScenarioSweep<'a> {
            let mut sweep = ScenarioSweep::new(&s.clusters, &s.trace, &s.prices).with_threads(2);
            let east_id = sweep.add_deployment("east", east);
            for (dep, label) in [(0usize, "nine"), (east_id, "east")] {
                sweep.add_point_on(dep, format!("{label}:pc"), s.config.clone(), || {
                    PriceConsciousPolicy::with_distance_threshold(1500.0)
                });
            }
            sweep
        }
        let s = short_scenario();
        let east = east_coast(&s.clusters);

        let mut cache = CompiledArtifacts::new();
        let mut first: Vec<SweepResult> = Vec::new();
        build(&s, &east)
            .execute_streaming(RunOptions::new().reuse_artifacts(&mut cache), |r| first.push(r));
        assert_eq!(cache.billing_matrices(), 2);
        assert_eq!(cache.hub_list_misses(), 2);
        assert_eq!(cache.hub_list_hits(), 0);

        // The second sweep revisits both hub lists: everything is a cache
        // hit, nothing new is compiled, and results are bit-identical.
        let mut second: Vec<SweepResult> = Vec::new();
        build(&s, &east)
            .execute_streaming(RunOptions::new().reuse_artifacts(&mut cache), |r| second.push(r));
        assert_eq!(cache.billing_matrices(), 2);
        assert_eq!(cache.compiled_preferences(), 2);
        assert_eq!(cache.delayed_views(), 2);
        assert_eq!(cache.hub_list_misses(), 2);
        assert_eq!(cache.hub_list_hits(), 2);
        assert_eq!(cache.hit_rate(), Some(0.5));
        first.sort_by_key(|r| r.index);
        second.sort_by_key(|r| r.index);
        assert_eq!(first, second);

        // And a fresh-cache streaming run agrees too.
        let mut fresh: Vec<SweepResult> = Vec::new();
        build(&s, &east).execute_streaming(RunOptions::new(), |r| fresh.push(r));
        fresh.sort_by_key(|r| r.index);
        assert_eq!(first, fresh);
    }

    #[test]
    #[should_panic(expected = "reused across scenarios")]
    fn cache_reuse_across_scenarios_is_rejected() {
        let s = short_scenario();
        let start = SimHour::from_date(2008, 12, 19);
        let other = Scenario::custom_window(17, HourRange::new(start, start.plus_hours(48)));

        fn build(s: &Scenario) -> ScenarioSweep<'_> {
            let mut sweep = ScenarioSweep::new(&s.clusters, &s.trace, &s.prices);
            sweep.add_point("pc", s.config.clone(), || {
                PriceConsciousPolicy::with_distance_threshold(1500.0)
            });
            sweep
        }
        let mut cache = CompiledArtifacts::new();
        build(&s).execute_streaming(RunOptions::new().reuse_artifacts(&mut cache), |_| {});
        // A different window (and therefore coverage) must be refused —
        // the cache would otherwise serve the first scenario's prices.
        build(&other).execute_streaming(RunOptions::new().reuse_artifacts(&mut cache), |_| {});
    }

    #[test]
    fn sweep_result_round_trips_through_json() {
        let s = short_scenario();
        let mut sweep = ScenarioSweep::new(&s.clusters, &s.trace, &s.prices);
        sweep.add_point("only", s.config.clone(), AkamaiLikePolicy::default);
        let mut results: Vec<SweepResult> = Vec::new();
        sweep.execute_streaming(RunOptions::new(), |r| results.push(r));
        let cell = &results[0];
        let back = SweepResult::from_json_value(&cell.to_json_value()).expect("round trip");
        assert_eq!(&back, cell);
    }

    #[test]
    fn sweep_report_round_trips_through_json() {
        let s = short_scenario();
        let mut sweep = ScenarioSweep::new(&s.clusters, &s.trace, &s.prices);
        sweep.add_point("only", s.config.clone(), AkamaiLikePolicy::default);
        let report = sweep.execute(RunOptions::new());
        let json = report.to_json();
        let back = SweepReport::from_json(&json).expect("round trip");
        assert_eq!(report, back);
        assert!(report.get("only").is_some());
        assert!(report.get("missing").is_none());
        assert_eq!(back.runs[0].deployment, DEFAULT_DEPLOYMENT);
    }

    #[test]
    fn legacy_json_without_deployment_labels_still_parses() {
        let s = short_scenario();
        let mut sweep = ScenarioSweep::new(&s.clusters, &s.trace, &s.prices);
        sweep.add_point("only", s.config.clone(), AkamaiLikePolicy::default);
        let report = sweep.execute(RunOptions::new());
        // Strip the deployment key, as a pre-multi-deployment report would be.
        let stripped = report.to_json().replace("\"deployment\":\"default\",", "");
        let back = SweepReport::from_json(&stripped).expect("legacy JSON parses");
        assert_eq!(back, report);
    }

    #[test]
    fn empty_sweep_is_fine() {
        let s = short_scenario();
        let sweep = ScenarioSweep::new(&s.clusters, &s.trace, &s.prices);
        assert!(sweep.is_empty());
        let report = sweep.execute(RunOptions::new());
        assert!(report.runs.is_empty());
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unregistered_deployment_index_is_rejected() {
        let s = short_scenario();
        let mut sweep = ScenarioSweep::new(&s.clusters, &s.trace, &s.prices);
        sweep.add_point_on(3, "bad", s.config.clone(), AkamaiLikePolicy::default);
    }
}
