//! The unified run surface.
//!
//! Historically every layer grew its own entry points — `Simulation::run` /
//! `run_with`, `Scenario::run` / `run_with_config`, `ScenarioSweep::run` /
//! `run_streaming` / `run_streaming_with` — each threading one more
//! optional argument through. [`RunOptions`] collapses the optional
//! arguments into a single builder that every `execute` method accepts:
//!
//! ```
//! use wattroute::prelude::*;
//!
//! let scenario = Scenario::akamai_24_day(7);
//! let mut policy = PriceConsciousPolicy::with_distance_threshold(1500.0);
//! let report = scenario.execute(&mut policy, RunOptions::new());
//!
//! // The same surface carries the optional sinks and overrides:
//! let mut recorder = LoadRecorder::new();
//! let report = scenario.execute(
//!     &mut policy,
//!     RunOptions::new()
//!         .with_config(SimulationConfig::default().with_reaction_delay(3))
//!         .record_loads(&mut recorder),
//! );
//! assert_eq!(report.reaction_delay_hours, 3);
//! assert!(!recorder.cluster_loads().is_empty());
//! ```
//!
//! Each option applies at the layer that owns the concept: a configuration
//! override at the scenario layer (a bare [`Simulation`](crate::simulation::Simulation) is already bound
//! to its configuration), a [`LoadRecorder`] sink at the simulation and
//! scenario layers, a caller-owned [`CompiledArtifacts`] cache at the sweep
//! layer. Passing an option to a layer that cannot honour it is a
//! configuration error and panics with a message naming the right layer —
//! silently ignoring a requested sink would corrupt calibration passes.
//!
//! The `execute` methods are the only entry points: the historical
//! `run`/`run_with`/`run_with_config`/`run_streaming` shims have been
//! removed after a deprecation cycle.

use crate::simulation::{LoadRecorder, SimulationConfig};
use crate::sweep::CompiledArtifacts;

/// Options for one run: the optional knobs shared by
/// [`Simulation::execute`](crate::simulation::Simulation::execute),
/// [`Scenario::execute`](crate::scenario::Scenario::execute) and
/// [`ScenarioSweep::execute`](crate::sweep::ScenarioSweep::execute) /
/// [`execute_streaming`](crate::sweep::ScenarioSweep::execute_streaming).
/// See the [module docs](self) for which option applies at which layer.
#[derive(Default)]
pub struct RunOptions<'r> {
    pub(crate) config: Option<SimulationConfig>,
    pub(crate) recorder: Option<&'r mut LoadRecorder>,
    pub(crate) artifacts: Option<&'r mut CompiledArtifacts>,
}

impl std::fmt::Debug for RunOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunOptions")
            .field("config", &self.config)
            .field("recorder", &self.recorder.is_some())
            .field("artifacts", &self.artifacts.is_some())
            .finish()
    }
}

impl<'r> RunOptions<'r> {
    /// No overrides: run with the target's own configuration, no load
    /// recording, a fresh artifact cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Override the scenario's [`SimulationConfig`] for this run only.
    /// Honoured by [`Scenario::execute`](crate::scenario::Scenario::execute);
    /// a bare `Simulation` is already bound to its configuration and a
    /// sweep's points each carry their own, so those layers reject it.
    pub fn with_config(mut self, config: SimulationConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Record the per-step per-cluster load series into `recorder` — the
    /// raw series a 95/5 calibration pass needs. Honoured by
    /// [`Simulation::execute`](crate::simulation::Simulation::execute) and
    /// [`Scenario::execute`](crate::scenario::Scenario::execute). Recording
    /// does not change the report.
    pub fn record_loads(mut self, recorder: &'r mut LoadRecorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Reuse a caller-owned compiled-artifact cache (price tables, ranked
    /// preferences) across runs. Honoured by
    /// [`ScenarioSweep::execute`](crate::sweep::ScenarioSweep::execute) and
    /// [`execute_streaming`](crate::sweep::ScenarioSweep::execute_streaming);
    /// the grid-sweep evaluator holds one cache across a whole placement
    /// search this way.
    pub fn reuse_artifacts(mut self, artifacts: &'r mut CompiledArtifacts) -> Self {
        self.artifacts = Some(artifacts);
        self
    }
}
