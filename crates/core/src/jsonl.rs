//! JSONL persistence for streamed sweep and optimizer results.
//!
//! A [`SweepReport`](crate::sweep::SweepReport) holds every run in memory,
//! which is exactly wrong for the grids
//! [`ScenarioSweep::execute_streaming`](crate::sweep::ScenarioSweep) exists
//! for. [`SweepJsonlWriter`] is the matching sink: one compact JSON object
//! per line per completed cell, appended as workers finish, so a
//! million-cell grid (or an optimizer search that evaluates thousands of
//! candidates) persists incrementally with a handful of reports in flight.
//! Lines arrive in completion order; each carries its grid `index`, so
//! [`parse_sweep_jsonl`] can restore grid order after the fact.
//!
//! ```no_run
//! use wattroute::jsonl::SweepJsonlWriter;
//! use wattroute::prelude::*;
//! use wattroute::sweep::ScenarioSweep;
//!
//! # let scenario = Scenario::akamai_24_day(1);
//! let mut sweep = ScenarioSweep::new(&scenario.clusters, &scenario.trace, &scenario.prices);
//! sweep.add_point("baseline", scenario.config.clone(), AkamaiLikePolicy::default);
//! let mut sink = SweepJsonlWriter::create("sweep.jsonl").unwrap();
//! sweep.execute_streaming(RunOptions::new(), |cell| sink.write(&cell).unwrap());
//! sink.finish().unwrap();
//! ```

use crate::report::ReportDecodeError;
use crate::sweep::SweepResult;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::json::JsonValue;

/// An append-one-line-per-cell sink for streamed [`SweepResult`]s.
pub struct SweepJsonlWriter<W: Write> {
    out: W,
    lines: usize,
}

impl SweepJsonlWriter<BufWriter<File>> {
    /// Create (truncating) a JSONL file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> SweepJsonlWriter<W> {
    /// Wrap any writer (a file, a `Vec<u8>`, a socket).
    pub fn new(out: W) -> Self {
        Self { out, lines: 0 }
    }

    /// Append one cell as a single JSON line.
    pub fn write(&mut self, result: &SweepResult) -> io::Result<()> {
        writeln!(self.out, "{}", result.to_json_value())?;
        self.lines += 1;
        Ok(())
    }

    /// Number of lines written so far.
    pub fn lines(&self) -> usize {
        self.lines
    }

    /// Flush and hand back the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Parse JSONL text produced by [`SweepJsonlWriter`] back into cells, in
/// file (completion) order. Blank lines are skipped, so a trailing newline
/// is fine; any malformed line is an error, not a silent drop.
pub fn parse_sweep_jsonl(text: &str) -> Result<Vec<SweepResult>, ReportDecodeError> {
    text.lines()
        .filter(|line| !line.trim().is_empty())
        .map(|line| SweepResult::from_json_value(&JsonValue::parse(line)?))
        .collect()
}

/// Read and parse a JSONL file produced by [`SweepJsonlWriter`].
pub fn read_sweep_jsonl(path: impl AsRef<Path>) -> Result<Vec<SweepResult>, ReportDecodeError> {
    let text = std::fs::read_to_string(path.as_ref())
        .map_err(|e| ReportDecodeError::new(format!("cannot read {:?}: {e}", path.as_ref())))?;
    parse_sweep_jsonl(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::RunOptions;
    use crate::scenario::Scenario;
    use crate::sweep::ScenarioSweep;
    use wattroute_market::time::{HourRange, SimHour};
    use wattroute_routing::baseline::AkamaiLikePolicy;
    use wattroute_routing::price_conscious::PriceConsciousPolicy;

    fn short_scenario() -> Scenario {
        let start = SimHour::from_date(2008, 12, 19);
        Scenario::custom_window(29, HourRange::new(start, start.plus_hours(24)))
    }

    fn build(s: &Scenario) -> ScenarioSweep<'_> {
        let mut sweep = ScenarioSweep::new(&s.clusters, &s.trace, &s.prices).with_threads(2);
        sweep.add_point("base", s.config.clone(), AkamaiLikePolicy::default);
        for t in [0.0, 1500.0] {
            sweep.add_point(format!("t{t}"), s.config.clone(), move || {
                PriceConsciousPolicy::with_distance_threshold(t)
            });
        }
        sweep
    }

    #[test]
    fn streamed_cells_round_trip_through_a_jsonl_buffer() {
        let s = short_scenario();
        let reference = build(&s).execute(RunOptions::new());

        let mut sink = SweepJsonlWriter::new(Vec::<u8>::new());
        build(&s).execute_streaming(RunOptions::new(), |cell| sink.write(&cell).expect("write"));
        assert_eq!(sink.lines(), reference.runs.len());
        let bytes = sink.finish().expect("flush");

        let mut cells = parse_sweep_jsonl(std::str::from_utf8(&bytes).unwrap()).expect("parse");
        // Lines are in completion order; indices restore grid order and
        // every cell matches the buffered report bit-for-bit.
        cells.sort_by_key(|c| c.index);
        assert_eq!(cells.len(), reference.runs.len());
        for (cell, run) in cells.iter().zip(&reference.runs) {
            assert_eq!(cell.label, run.label);
            assert_eq!(cell.deployment, run.deployment);
            assert_eq!(cell.report, run.report);
        }
    }

    #[test]
    fn file_round_trip_and_blank_line_tolerance() {
        let s = short_scenario();
        let path =
            std::env::temp_dir().join(format!("wattroute_jsonl_{}.jsonl", std::process::id()));
        let mut sink = SweepJsonlWriter::create(&path).expect("create");
        build(&s).execute_streaming(RunOptions::new(), |cell| sink.write(&cell).expect("write"));
        sink.finish().expect("flush");

        let cells = read_sweep_jsonl(&path).expect("read back");
        assert_eq!(cells.len(), 3);

        // A trailing blank line (hand-edited or concatenated files) is fine.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push('\n');
        assert_eq!(parse_sweep_jsonl(&text).unwrap().len(), 3);

        // A corrupt line is an error, not a silent drop.
        text.push_str("{not json\n");
        assert!(parse_sweep_jsonl(&text).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_integer_indices_are_rejected() {
        let s = short_scenario();
        let mut sink = SweepJsonlWriter::new(Vec::<u8>::new());
        build(&s).execute_streaming(RunOptions::new(), |cell| sink.write(&cell).expect("write"));
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        // A hand-edited index must fail loudly, not saturate or truncate
        // into some other cell's slot.
        for bad in ["-1", "3.7", "1e99"] {
            let broken = text.replacen("\"index\":0", &format!("\"index\":{bad}"), 1);
            assert_ne!(broken, text, "fixture should contain index 0");
            assert!(
                parse_sweep_jsonl(&broken).is_err(),
                "index {bad} must be rejected, not coerced"
            );
        }
    }
}
