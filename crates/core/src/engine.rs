//! The incremental tick core of the simulator.
//!
//! [`SimulationEngine`] owns everything a long-running router needs between
//! two routing decisions: the deployment, the constraint set, the power
//! models, and the accumulating report state. One call to
//! [`SimulationEngine::tick`] advances the engine by a single 5-minute step,
//! given only that step's view of the world — a [`PriceSlice`] (this hour's
//! delayed and billing prices) and a [`DemandSlice`] (this step's per-state
//! demand). The batch [`Simulation`](crate::simulation::Simulation) drivers
//! replay a whole trace through `tick` and are bit-identical to the
//! pre-tick-core loop; the `routed` daemon calls it from a wall-clock ingest
//! loop instead.
//!
//! The accumulated router state is a value: [`SimulationEngine::snapshot`]
//! captures it, [`SimulationEngine::restore`] reinstates it (into the same
//! engine or a freshly built one over the same deployment), and
//! [`EngineSnapshot::to_json_value`] round-trips it losslessly over the
//! daemon's wire protocol. Replaying the remaining steps after a
//! snapshot/restore yields a report bit-identical to an uninterrupted run —
//! the property test in `tests/proptest_tick_equivalence.rs` pins this.

use crate::json::{self, JsonValue};
use crate::report::{
    cluster_labels, ClusterReport, DistanceHistogram, ReportDecodeError, SimulationReport,
};
use crate::simulation::SimulationConfig;
use wattroute_energy::cost::energy_cost_dollars;
use wattroute_energy::model::ClusterPowerModel;
use wattroute_geo::UsState;
use wattroute_market::time::SimHour;
use wattroute_routing::allocation::Allocation;
use wattroute_routing::constraints::OverflowMode;
use wattroute_routing::policy::{RoutingContext, RoutingPolicy};
use wattroute_stats::{quantiles, OnlineStats};
use wattroute_workload::trace::STEP_SECONDS;
use wattroute_workload::ClusterSet;

/// One hour's prices, as the engine needs them for a tick: what the router
/// is allowed to *see* (delayed by the reaction lag) and what the market
/// actually *charges* (the spot price of the hour). Both slices are aligned
/// with the engine's cluster order.
#[derive(Debug, Clone, Copy)]
pub struct PriceSlice<'p> {
    /// The simulation hour the tick falls in.
    pub hour: SimHour,
    /// Router-visible (delayed) price per cluster in $/MWh.
    pub delayed: &'p [f64],
    /// Billing (actual spot) price per cluster in $/MWh.
    pub billing: &'p [f64],
}

impl<'p> PriceSlice<'p> {
    /// Bundle one hour's delayed and billing price rows.
    pub fn new(hour: SimHour, delayed: &'p [f64], billing: &'p [f64]) -> Self {
        Self { hour, delayed, billing }
    }
}

/// One step's demand, aligned with the engine's client-state order.
#[derive(Debug, Clone, Copy)]
pub struct DemandSlice<'d> {
    /// Demand per US state in hits/second.
    pub demand: &'d [f64],
}

impl<'d> DemandSlice<'d> {
    /// Wrap a per-state demand row.
    pub fn new(demand: &'d [f64]) -> Self {
        Self { demand }
    }
}

/// The complete accumulated router state of a [`SimulationEngine`]: the
/// step counter, the cached allocation, and every per-cluster accumulator
/// the final [`SimulationReport`] is assembled from. A snapshot restored
/// into an engine over the same deployment — including a freshly
/// constructed one — continues the run exactly where the snapshot was
/// taken, bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSnapshot {
    step: usize,
    policy_name: Option<String>,
    cached_allocation: Option<Allocation>,
    last_alloc_hour: SimHour,
    clamped_lead_hours: u64,
    cost: Vec<f64>,
    energy_wh: Vec<f64>,
    hits: Vec<f64>,
    overflow_hits: Vec<f64>,
    rejected_hits: Vec<f64>,
    binding_steps: Vec<usize>,
    load_series: Vec<Vec<f64>>,
    util_stats: Vec<OnlineStats>,
    distances: DistanceHistogram,
}

/// Sentinel for "no allocation cached yet" (matches the batch loop's
/// initial `last_alloc_hour`).
const NO_ALLOC_HOUR: SimHour = SimHour(u64::MAX);

/// Per-tick duration spans (`engine.tick`, `engine.tick.realloc`,
/// `engine.tick.accumulate`, and the driver's `engine.price_view`) record
/// one step in this many. A steady-state tick is now a sub-microsecond
/// add loop; timing every one would cost more than the phase being timed
/// and break the enabled-telemetry overhead budget (`obs_report
/// --check-overhead`). A deterministic 1-in-8 sample keeps hundreds of
/// datapoints per simulated day, always includes step 0, and leaves every
/// counter exact.
pub(crate) const SPAN_SAMPLE_EVERY: usize = 8;

impl EngineSnapshot {
    fn empty(n_clusters: usize) -> Self {
        Self {
            step: 0,
            policy_name: None,
            cached_allocation: None,
            last_alloc_hour: NO_ALLOC_HOUR,
            clamped_lead_hours: 0,
            cost: vec![0.0; n_clusters],
            energy_wh: vec![0.0; n_clusters],
            hits: vec![0.0; n_clusters],
            overflow_hits: vec![0.0; n_clusters],
            rejected_hits: vec![0.0; n_clusters],
            binding_steps: vec![0; n_clusters],
            load_series: vec![Vec::new(); n_clusters],
            util_stats: vec![OnlineStats::new(); n_clusters],
            distances: DistanceHistogram::default_resolution(),
        }
    }

    /// Number of ticks accumulated into this snapshot.
    pub fn steps(&self) -> usize {
        self.step
    }

    /// Number of clusters the snapshot was taken over.
    pub fn num_clusters(&self) -> usize {
        self.cost.len()
    }

    /// The name of the policy that drove the run, once one has ticked.
    pub fn policy_name(&self) -> Option<&str> {
        self.policy_name.as_deref()
    }

    /// Encode the snapshot as a JSON value (the daemon's `snapshot` reply).
    /// The encoding is lossless: [`Self::from_json_value`] reproduces the
    /// snapshot exactly, so a run resumed from the decoded snapshot stays
    /// bit-identical to an uninterrupted one.
    pub fn to_json_value(&self) -> JsonValue {
        let mut fields = vec![
            ("step", JsonValue::Number(self.step as f64)),
            ("clamped_lead_hours", JsonValue::Number(self.clamped_lead_hours as f64)),
            ("cost", json::number_array(&self.cost)),
            ("energy_wh", json::number_array(&self.energy_wh)),
            ("hits", json::number_array(&self.hits)),
            ("overflow_hits", json::number_array(&self.overflow_hits)),
            ("rejected_hits", json::number_array(&self.rejected_hits)),
            (
                "binding_steps",
                JsonValue::Array(
                    self.binding_steps.iter().map(|&b| JsonValue::Number(b as f64)).collect(),
                ),
            ),
            (
                "load_series",
                JsonValue::Array(self.load_series.iter().map(|s| json::number_array(s)).collect()),
            ),
            ("util_stats", JsonValue::Array(self.util_stats.iter().map(stats_to_json).collect())),
            ("distances", self.distances.to_json_value()),
        ];
        if let Some(name) = &self.policy_name {
            fields.push(("policy", JsonValue::String(name.clone())));
        }
        if let Some(allocation) = &self.cached_allocation {
            fields.push(("allocation", allocation_to_json(allocation)));
            fields.push(("last_alloc_hour", JsonValue::Number(self.last_alloc_hour.0 as f64)));
        }
        json::object_iter(fields)
    }

    /// Decode a snapshot produced by [`Self::to_json_value`].
    pub fn from_json_value(v: &JsonValue) -> Result<Self, ReportDecodeError> {
        let cost = f64_vec(v, "cost")?;
        let n = cost.len();
        let energy_wh = f64_vec(v, "energy_wh")?;
        let hits = f64_vec(v, "hits")?;
        let overflow_hits = f64_vec(v, "overflow_hits")?;
        let rejected_hits = f64_vec(v, "rejected_hits")?;
        let binding_steps: Vec<usize> =
            f64_vec(v, "binding_steps")?.into_iter().map(|b| b as usize).collect();
        let load_series = v
            .get("load_series")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| ReportDecodeError::new("snapshot field 'load_series' is not an array"))?
            .iter()
            .map(|row| {
                row.as_array()
                    .ok_or_else(|| {
                        ReportDecodeError::new("snapshot load_series row is not an array")
                    })?
                    .iter()
                    .map(|x| {
                        x.as_f64().ok_or_else(|| {
                            ReportDecodeError::new("snapshot load_series entry is not a number")
                        })
                    })
                    .collect::<Result<Vec<f64>, _>>()
            })
            .collect::<Result<Vec<Vec<f64>>, _>>()?;
        let util_stats = v
            .get("util_stats")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| ReportDecodeError::new("snapshot field 'util_stats' is not an array"))?
            .iter()
            .map(stats_from_json)
            .collect::<Result<Vec<OnlineStats>, _>>()?;
        for (name, len) in [
            ("energy_wh", energy_wh.len()),
            ("hits", hits.len()),
            ("overflow_hits", overflow_hits.len()),
            ("rejected_hits", rejected_hits.len()),
            ("binding_steps", binding_steps.len()),
            ("load_series", load_series.len()),
            ("util_stats", util_stats.len()),
        ] {
            if len != n {
                return Err(ReportDecodeError::new(format!(
                    "snapshot field '{name}' has {len} entries for {n} clusters"
                )));
            }
        }
        let cached_allocation = match v.get("allocation") {
            Some(a) => Some(allocation_from_json(a, n)?),
            None => None,
        };
        let last_alloc_hour = match (&cached_allocation, v.get("last_alloc_hour")) {
            (Some(_), Some(h)) => SimHour(h.as_f64().ok_or_else(|| {
                ReportDecodeError::new("snapshot field 'last_alloc_hour' is not a number")
            })? as u64),
            (Some(_), None) => {
                return Err(ReportDecodeError::new(
                    "snapshot has an allocation but no 'last_alloc_hour'",
                ))
            }
            (None, _) => NO_ALLOC_HOUR,
        };
        Ok(Self {
            step: u64_field(v, "step")? as usize,
            policy_name: match v.get("policy") {
                Some(p) => Some(
                    p.as_str()
                        .ok_or_else(|| {
                            ReportDecodeError::new("snapshot field 'policy' is not a string")
                        })?
                        .to_string(),
                ),
                None => None,
            },
            cached_allocation,
            last_alloc_hour,
            clamped_lead_hours: u64_field(v, "clamped_lead_hours")?,
            cost,
            energy_wh,
            hits,
            overflow_hits,
            rejected_hits,
            binding_steps,
            load_series,
            util_stats,
            distances: DistanceHistogram::from_json_value(
                v.get("distances")
                    .ok_or_else(|| ReportDecodeError::new("snapshot missing field 'distances'"))?,
            )?,
        })
    }
}

fn u64_field(v: &JsonValue, key: &str) -> Result<u64, ReportDecodeError> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .map(|x| x as u64)
        .ok_or_else(|| ReportDecodeError::new(format!("snapshot field '{key}' is not a number")))
}

fn f64_vec(v: &JsonValue, key: &str) -> Result<Vec<f64>, ReportDecodeError> {
    v.get(key)
        .and_then(JsonValue::as_array)
        .ok_or_else(|| ReportDecodeError::new(format!("snapshot field '{key}' is not an array")))?
        .iter()
        .map(|x| {
            x.as_f64().ok_or_else(|| {
                ReportDecodeError::new(format!("snapshot field '{key}' has a non-number entry"))
            })
        })
        .collect()
}

fn stats_to_json(stats: &OnlineStats) -> JsonValue {
    // An empty accumulator carries ±∞ min/max sentinels, which JSON cannot
    // represent; encode the count alone and rebuild a fresh accumulator on
    // decode. Non-empty accumulators hold only finite fields (push ignores
    // non-finite observations), so the round trip is lossless.
    if stats.count() == 0 {
        return json::object([("count", JsonValue::Number(0.0))]);
    }
    json::object([
        ("count", JsonValue::Number(stats.count() as f64)),
        ("mean", JsonValue::Number(stats.mean().expect("non-empty"))),
        ("m2", JsonValue::Number(stats.m2())),
        ("min", JsonValue::Number(stats.min().expect("non-empty"))),
        ("max", JsonValue::Number(stats.max().expect("non-empty"))),
        ("sum", JsonValue::Number(stats.sum())),
    ])
}

fn stats_from_json(v: &JsonValue) -> Result<OnlineStats, ReportDecodeError> {
    let count = u64_field(v, "count")?;
    if count == 0 {
        return Ok(OnlineStats::new());
    }
    let get = |key: &str| {
        v.get(key).and_then(JsonValue::as_f64).ok_or_else(|| {
            ReportDecodeError::new(format!("snapshot util_stats field '{key}' is not a number"))
        })
    };
    Ok(OnlineStats::from_parts(
        count,
        get("mean")?,
        get("m2")?,
        get("min")?,
        get("max")?,
        get("sum")?,
    ))
}

fn allocation_to_json(allocation: &Allocation) -> JsonValue {
    JsonValue::Array(allocation.matrix().iter().map(|row| json::number_array(row)).collect())
}

fn allocation_from_json(v: &JsonValue, n_clusters: usize) -> Result<Allocation, ReportDecodeError> {
    let rows = v
        .as_array()
        .ok_or_else(|| ReportDecodeError::new("snapshot allocation is not an array"))?;
    if rows.len() != n_clusters {
        return Err(ReportDecodeError::new(format!(
            "snapshot allocation has {} rows for {n_clusters} clusters",
            rows.len()
        )));
    }
    let matrix = rows
        .iter()
        .map(|row| {
            row.as_array()
                .ok_or_else(|| ReportDecodeError::new("snapshot allocation row is not an array"))?
                .iter()
                .map(|x| {
                    x.as_f64().ok_or_else(|| {
                        ReportDecodeError::new("snapshot allocation entry is not a number")
                    })
                })
                .collect::<Result<Vec<f64>, _>>()
        })
        .collect::<Result<Vec<Vec<f64>>, _>>()?;
    let width = matrix.first().map(Vec::len).unwrap_or(0);
    if matrix.iter().any(|row| row.len() != width) {
        return Err(ReportDecodeError::new("snapshot allocation rows have unequal lengths"));
    }
    Ok(Allocation::from_matrix(matrix))
}

/// Step-invariant facts of the current allocation epoch, computed once per
/// reallocation into engine-owned buffers and replayed by every step until
/// the next reallocation. Between reallocations the cached [`Allocation`]
/// does not change, so neither do per-cluster loads, saturated utilization,
/// watts (hence Wh per step), the served/overflow/rejected split, the
/// binding-cap flags, or the distance-sample set — only dollars vary, and
/// only hourly through `prices.billing`. Caching these collapses the
/// per-step accumulate phase to a tight add-scaled-constants loop with no
/// heap allocation and no haversine walk.
///
/// The cache is *derived* state: it lives on the engine, not in
/// [`EngineSnapshot`], and is rebuilt from the cached allocation whenever
/// `valid` is false (after a reallocation or a [`SimulationEngine::restore`]).
/// Because the rebuild depends only on the allocation and run constants, a
/// mid-epoch rebuild reproduces the pre-snapshot values bit for bit.
#[derive(Debug, Clone, Default)]
struct EpochCache {
    valid: bool,
    loads: Vec<f64>,
    util: Vec<f64>,
    wh_step: Vec<f64>,
    hits_step: Vec<f64>,
    overflow_step: Vec<f64>,
    rejected_step: Vec<f64>,
    binding: Vec<bool>,
    samples: Vec<(f64, f64)>,
}

/// The incremental routing/accounting core: feed it one [`PriceSlice`] and
/// [`DemandSlice`] per 5-minute step and it maintains exactly the state the
/// batch simulator accumulates over a whole trace.
///
/// The engine *borrows* the deployment and client-state list (they are
/// immutable run inputs) and *owns* its configuration and accumulated
/// state. Accumulation order is identical to the historical batch loop, so
/// driving a trace through `tick` — in one go, or split across
/// [`Self::snapshot`]/[`Self::restore`] — produces bit-identical reports.
#[derive(Debug, Clone)]
pub struct SimulationEngine<'a> {
    clusters: &'a ClusterSet,
    states: &'a [UsState],
    config: SimulationConfig,
    power_models: Vec<ClusterPowerModel>,
    capacities: Vec<f64>,
    state: EngineSnapshot,
    epoch: EpochCache,
}

impl<'a> SimulationEngine<'a> {
    /// Build an engine over a deployment and client-state list.
    ///
    /// # Panics
    /// Panics on an empty deployment or on constraint vectors whose length
    /// does not match it — configuration errors, not data conditions
    /// (validate ahead of time with
    /// [`SimulationConfig::validate_for`](crate::simulation::SimulationConfig::validate_for)
    /// for a `Result` instead).
    pub fn new(clusters: &'a ClusterSet, states: &'a [UsState], config: SimulationConfig) -> Self {
        assert!(!clusters.is_empty(), "deployment has no clusters");
        config.constraints.validate(clusters.len());
        let power_models = clusters
            .clusters()
            .iter()
            .map(|c| ClusterPowerModel::new(config.energy, c.servers))
            .collect();
        let capacities = clusters.clusters().iter().map(|c| c.capacity_hits_per_sec()).collect();
        let state = EngineSnapshot::empty(clusters.len());
        Self {
            clusters,
            states,
            config,
            power_models,
            capacities,
            state,
            epoch: EpochCache::default(),
        }
    }

    /// Record how many leading hours of the price feed are delay-clamped
    /// (router-visible prices fell before the series began). The batch
    /// drivers set this once from the compiled table; the daemon updates it
    /// as its feed ingests. Surfaced verbatim in reports.
    pub fn with_clamped_lead_hours(mut self, hours: u64) -> Self {
        self.state.clamped_lead_hours = hours;
        self
    }

    /// Like [`Self::with_clamped_lead_hours`], for an engine already built.
    pub fn set_clamped_lead_hours(&mut self, hours: u64) {
        self.state.clamped_lead_hours = hours;
    }

    /// The deployment being routed over.
    pub fn clusters(&self) -> &ClusterSet {
        self.clusters
    }

    /// The client states, defining the demand-vector order.
    pub fn states(&self) -> &[UsState] {
        self.states
    }

    /// The configuration in force.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// Number of ticks accumulated so far.
    pub fn steps(&self) -> usize {
        self.state.step
    }

    /// The allocation currently in force (cached from the last
    /// reallocation), if any tick has run.
    pub fn current_allocation(&self) -> Option<&Allocation> {
        self.state.cached_allocation.as_ref()
    }

    /// The hour of the last reallocation, if any tick has run.
    pub fn last_allocation_hour(&self) -> Option<SimHour> {
        (self.state.last_alloc_hour != NO_ALLOC_HOUR).then_some(self.state.last_alloc_hour)
    }

    /// Advance the engine by one 5-minute step.
    ///
    /// Re-routes through `policy` on the configured interval (and whenever
    /// the hour changes — see
    /// [`SimulationConfig::reallocate_every_steps`]), then accounts the
    /// step's energy, dollars, hits, and distances against the allocation
    /// in force. Returns that allocation.
    ///
    /// # Panics
    /// Panics if the slice lengths do not match the engine's cluster and
    /// state counts.
    pub fn tick(
        &mut self,
        policy: &mut dyn RoutingPolicy,
        prices: PriceSlice<'_>,
        demand: DemandSlice<'_>,
    ) -> &Allocation {
        // The epoch cache made a steady-state tick cheap enough that
        // opening duration spans on *every* step would alone blow the <5%
        // enabled-telemetry budget, so the per-tick phase histograms
        // (including `engine.tick.realloc`, which fires per tick at the
        // default one-step reallocation interval) sample one step in
        // [`SPAN_SAMPLE_EVERY`] — deterministically, so step 0, and hence
        // any run, always records. Counters stay exact every tick.
        let sampled = self.state.step % SPAN_SAMPLE_EVERY == 0;
        let _tick_span = if sampled {
            wattroute_obs::span!("engine.tick")
        } else {
            wattroute_obs::Span::disabled()
        };
        let n_clusters = self.clusters.len();
        assert_eq!(prices.delayed.len(), n_clusters, "delayed price length mismatch");
        assert_eq!(prices.billing.len(), n_clusters, "billing price length mismatch");
        assert_eq!(demand.demand.len(), self.states.len(), "demand length mismatch");

        let step_hours = STEP_SECONDS as f64 / 3600.0;
        let constraints = &self.config.constraints;
        let tariff = self.config.bandwidth_tariff.as_ref();
        let accounted_caps = tariff.and(constraints.bandwidth_caps());

        let st = &mut self.state;
        if st.policy_name.is_none() {
            st.policy_name = Some(policy.name().to_string());
        }
        let i = st.step;
        let hour = prices.hour;

        // Re-route on the configured interval, and additionally whenever
        // the step crosses an hour boundary: prices change hourly, so a
        // cached allocation carried across hours would route on the
        // previous hour's prices.
        let reallocate = st.cached_allocation.is_none()
            || i % self.config.reallocate_every_steps == 0
            || hour != st.last_alloc_hour;
        if wattroute_obs::Telemetry::enabled() {
            // Allocation-reuse visibility: a "miss" runs the policy, a
            // "hit" serves the step from the cached allocation. Gated so
            // the disabled hot path stays at one relaxed load per tick.
            if reallocate {
                wattroute_obs::counter!("engine.alloc_cache.misses").inc();
            } else {
                wattroute_obs::counter!("engine.alloc_cache.hits").inc();
            }
        }
        if reallocate {
            let _realloc_span = if sampled {
                wattroute_obs::span!("engine.tick.realloc")
            } else {
                wattroute_obs::Span::disabled()
            };
            let ctx = RoutingContext::new(
                self.clusters,
                self.states,
                demand.demand,
                prices.delayed,
                hour,
            )
            .with_constraints(constraints);
            let allocation = st
                .cached_allocation
                .get_or_insert_with(|| Allocation::zeros(n_clusters, self.states.len()));
            policy.allocate_into(allocation, &ctx);
            st.last_alloc_hour = hour;
            self.epoch.valid = false;
        }

        if !self.epoch.valid {
            // Refresh the epoch cache: everything below is constant until
            // the next reallocation (see [`EpochCache`]).
            let allocation = st.cached_allocation.as_ref().expect("just populated");
            let epoch = &mut self.epoch;
            allocation.cluster_loads_into(&mut epoch.loads);
            allocation.distance_samples_into(self.clusters, self.states, &mut epoch.samples);
            epoch.util.clear();
            epoch.wh_step.clear();
            epoch.hits_step.clear();
            epoch.overflow_step.clear();
            epoch.rejected_step.clear();
            epoch.binding.clear();
            for c in 0..n_clusters {
                let cluster = self.clusters.get(c).expect("index in range");
                let raw_utilization = cluster.utilization(epoch.loads[c]);
                let mut served = epoch.loads[c];
                let mut overflow = 0.0;
                let mut rejected = 0.0;
                if raw_utilization > 1.0 {
                    // Demand beyond capacity. The energy model saturates in
                    // both modes; the accounting differs: billed as served
                    // at capacity (overflow), or turned away (rejected).
                    let over = epoch.loads[c] - self.capacities[c];
                    match constraints.overflow() {
                        OverflowMode::BillAtCapacity => {
                            overflow = over * STEP_SECONDS as f64;
                        }
                        OverflowMode::Reject => {
                            rejected = over * STEP_SECONDS as f64;
                            served = self.capacities[c];
                        }
                    }
                }
                let utilization = raw_utilization.min(1.0);
                let watts = self.power_models[c].power_watts(utilization);
                epoch.util.push(utilization);
                epoch.wh_step.push(watts * step_hours);
                epoch.hits_step.push(served * STEP_SECONDS as f64);
                epoch.overflow_step.push(overflow);
                epoch.rejected_step.push(rejected);
                // A step is "binding" when the allocation sits at (or,
                // through spill, above) the cluster's 95/5 ceiling —
                // hours where the constraint actually shaped routing. An
                // idle cluster is never binding, even at a zero cap
                // (calibrations against concentrating baselines leave
                // unused clusters with p95 = 0).
                epoch.binding.push(accounted_caps.is_some_and(|caps| {
                    caps[c].is_finite()
                        && epoch.loads[c] > 0.0
                        && epoch.loads[c] >= caps[c] * (1.0 - 1e-9)
                }));
            }
            epoch.valid = true;
        }

        // The per-step accumulate phase: add the epoch's precomputed
        // constants. Dollars are the one quantity that varies within an
        // epoch — billing prices change hourly (and an epoch never straddles
        // an hour, since an hour change forces a reallocation). Adding the
        // zero overflow/rejected entries unconditionally is bitwise-exact:
        // the accumulators are never negative, and `x + 0.0 == x` for every
        // non-negative `x`.
        let _accumulate_span = if sampled {
            wattroute_obs::span!("engine.tick.accumulate")
        } else {
            wattroute_obs::Span::disabled()
        };
        let epoch = &self.epoch;
        for c in 0..n_clusters {
            st.energy_wh[c] += epoch.wh_step[c];
            st.cost[c] += energy_cost_dollars(epoch.wh_step[c], prices.billing[c]);
            st.hits[c] += epoch.hits_step[c];
            st.overflow_hits[c] += epoch.overflow_step[c];
            st.rejected_hits[c] += epoch.rejected_step[c];
            st.util_stats[c].push(epoch.util[c]);
            st.load_series[c].push(epoch.loads[c]);
            if epoch.binding[c] {
                st.binding_steps[c] += 1;
            }
        }

        for &(distance_km, weight) in &epoch.samples {
            st.distances.add(distance_km, weight * STEP_SECONDS as f64);
        }

        st.step += 1;
        st.cached_allocation.as_ref().expect("populated above")
    }

    /// Assemble a [`SimulationReport`] from the state accumulated so far.
    /// Valid mid-run (the daemon's `stats` query) as well as at the end of
    /// a trace; a report taken after the final tick is bit-identical to
    /// what the batch simulator produces for the same inputs.
    pub fn report(&self) -> SimulationReport {
        let st = &self.state;
        let n_clusters = self.clusters.len();
        let n_steps = st.step;
        let tariff = self.config.bandwidth_tariff.as_ref();
        let accounted_caps = tariff.and(self.config.constraints.bandwidth_caps());
        let labels = cluster_labels(self.clusters);
        let clusters = (0..n_clusters)
            .map(|c| {
                let p95 = quantiles::percentile(&st.load_series[c], 95.0).unwrap_or(0.0);
                ClusterReport {
                    label: labels[c].clone(),
                    cost_dollars: st.cost[c],
                    energy_mwh: st.energy_wh[c] / 1.0e6,
                    mean_utilization: st.util_stats[c].mean().unwrap_or(0.0),
                    p95_hits_per_sec: p95,
                    peak_hits_per_sec: st.load_series[c].iter().copied().fold(0.0, f64::max),
                    total_hits: st.hits[c],
                    overflow_hits: st.overflow_hits[c],
                    rejected_hits: st.rejected_hits[c],
                    bandwidth_cap_hits_per_sec: accounted_caps
                        .map(|caps| caps[c])
                        .filter(|cap| cap.is_finite()),
                    bandwidth_binding_hours: st.binding_steps[c] as f64 * STEP_SECONDS as f64
                        / 3600.0,
                    bandwidth_cost_dollars: tariff.map_or(0.0, |t| t.bill_dollars(p95, n_steps)),
                }
            })
            .collect::<Vec<_>>();

        SimulationReport {
            policy: st.policy_name.clone().unwrap_or_default(),
            steps: n_steps,
            reaction_delay_hours: self.config.reaction_delay_hours,
            bandwidth_constrained: self.config.constraints.is_bandwidth_constrained(),
            total_cost_dollars: st.cost.iter().sum(),
            total_energy_mwh: st.energy_wh.iter().sum::<f64>() / 1.0e6,
            total_overflow_hits: st.overflow_hits.iter().sum(),
            total_rejected_hits: st.rejected_hits.iter().sum(),
            total_bandwidth_binding_hours: clusters.iter().map(|c| c.bandwidth_binding_hours).sum(),
            total_bandwidth_cost_dollars: clusters.iter().map(|c| c.bandwidth_cost_dollars).sum(),
            delay_clamped_hours: st.clamped_lead_hours,
            clusters,
            mean_distance_km: st.distances.mean_km().unwrap_or(0.0),
            p99_distance_km: st.distances.percentile_km(99.0).unwrap_or(0.0),
            distances: st.distances.clone(),
            tiers: None,
        }
    }

    /// Capture the full accumulated router state.
    pub fn snapshot(&self) -> EngineSnapshot {
        self.state.clone()
    }

    /// Reinstate a previously captured state, discarding whatever this
    /// engine has accumulated since (or, on a freshly built engine,
    /// resuming a run another engine started).
    ///
    /// # Panics
    /// Panics if the snapshot's shape does not match this engine's
    /// deployment and state list.
    pub fn restore(&mut self, snapshot: &EngineSnapshot) {
        assert_eq!(snapshot.num_clusters(), self.clusters.len(), "snapshot cluster count mismatch");
        if let Some(allocation) = &snapshot.cached_allocation {
            assert_eq!(
                allocation.num_clusters(),
                self.clusters.len(),
                "snapshot allocation cluster count mismatch"
            );
            assert_eq!(
                allocation.num_states(),
                self.states.len(),
                "snapshot allocation state count mismatch"
            );
        }
        self.state = snapshot.clone();
        // The epoch cache describes the *previous* cached allocation; the
        // next tick rebuilds it from the restored one. The rebuild depends
        // only on the allocation and run constants, so a mid-epoch restore
        // stays bit-identical to an uninterrupted run.
        self.epoch.valid = false;
    }

    /// Consume the engine, yielding the raw per-cluster load series
    /// accumulated so far (`series[cluster][step]`, hits/second at 5-minute
    /// resolution) — what a [`LoadRecorder`](crate::simulation::LoadRecorder)
    /// sink receives from the batch drivers.
    pub fn into_load_series(self) -> Vec<Vec<f64>> {
        self.state.load_series
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wattroute_market::generator::PriceGenerator;
    use wattroute_market::time::HourRange;
    use wattroute_routing::prelude::*;
    use wattroute_workload::SyntheticWorkloadConfig;

    fn setup() -> (ClusterSet, wattroute_workload::trace::Trace, wattroute_market::types::PriceSet)
    {
        let clusters = ClusterSet::akamai_like_nine();
        let start = SimHour::from_date(2008, 12, 19);
        let range = HourRange::new(start, start.plus_hours(24));
        let trace = SyntheticWorkloadConfig::default().generate(range);
        let prices = PriceGenerator::nine_cluster_default(7).realtime_hourly(range);
        (clusters, trace, prices)
    }

    #[test]
    fn fresh_engine_is_empty() {
        let (clusters, trace, _) = setup();
        let engine = SimulationEngine::new(&clusters, &trace.states, SimulationConfig::default());
        assert_eq!(engine.steps(), 0);
        assert!(engine.current_allocation().is_none());
        assert_eq!(engine.last_allocation_hour(), None);
        let report = engine.report();
        assert_eq!(report.steps, 0);
        assert_eq!(report.total_cost_dollars, 0.0);
        assert_eq!(report.policy, "");
    }

    #[test]
    fn tick_accumulates_and_reports() {
        let (clusters, trace, prices) = setup();
        let sim = crate::simulation::Simulation::new(
            &clusters,
            &trace,
            &prices,
            SimulationConfig::default(),
        );
        let table = sim.price_table();
        let mut engine =
            SimulationEngine::new(&clusters, &trace.states, SimulationConfig::default())
                .with_clamped_lead_hours(table.clamped_lead_hours());
        let mut policy = NearestClusterPolicy::new();
        for (i, step) in trace.steps().iter().enumerate() {
            let hour = trace.step_hour(i);
            let allocation = engine.tick(
                &mut policy,
                PriceSlice::new(
                    hour,
                    table.delayed_at(hour).unwrap(),
                    table.billing_at(hour).unwrap(),
                ),
                DemandSlice::new(&step.us_demand),
            );
            assert_eq!(allocation.num_clusters(), clusters.len());
        }
        assert_eq!(engine.steps(), trace.num_steps());
        assert_eq!(engine.last_allocation_hour(), Some(trace.step_hour(trace.num_steps() - 1)));
        let report = engine.report();
        assert_eq!(report.steps, trace.num_steps());
        assert!(report.total_cost_dollars > 0.0);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let (clusters, trace, prices) = setup();
        let sim = crate::simulation::Simulation::new(
            &clusters,
            &trace,
            &prices,
            SimulationConfig::default(),
        );
        let table = sim.price_table();
        let mut engine =
            SimulationEngine::new(&clusters, &trace.states, SimulationConfig::default());
        let mut policy = PriceConsciousPolicy::with_distance_threshold(1500.0);
        for (i, step) in trace.steps().iter().enumerate().take(30) {
            let hour = trace.step_hour(i);
            engine.tick(
                &mut policy,
                PriceSlice::new(
                    hour,
                    table.delayed_at(hour).unwrap(),
                    table.billing_at(hour).unwrap(),
                ),
                DemandSlice::new(&step.us_demand),
            );
        }
        let snapshot = engine.snapshot();
        let json = snapshot.to_json_value().to_string();
        let decoded = EngineSnapshot::from_json_value(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(decoded, snapshot);
        assert_eq!(decoded.steps(), 30);
        assert_eq!(decoded.policy_name(), Some(policy.name()));
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let (clusters, trace, _) = setup();
        let engine = SimulationEngine::new(&clusters, &trace.states, SimulationConfig::default());
        let snapshot = engine.snapshot();
        let json = snapshot.to_json_value().to_string();
        let decoded = EngineSnapshot::from_json_value(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(decoded, snapshot);
        assert!(!json.contains("allocation"), "no cached allocation before the first tick");
    }

    #[test]
    fn restore_rejects_mismatched_shapes() {
        let (clusters, trace, _) = setup();
        let engine = SimulationEngine::new(&clusters, &trace.states, SimulationConfig::default());
        let snapshot = engine.snapshot();
        let small =
            ClusterSet::new(clusters.clusters().iter().take(3).cloned().collect::<Vec<_>>());
        let mut other = SimulationEngine::new(&small, &trace.states, SimulationConfig::default());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            other.restore(&snapshot);
        }));
        assert!(result.is_err(), "restoring a 9-cluster snapshot into a 3-cluster engine");
    }

    #[test]
    fn malformed_snapshot_json_is_rejected() {
        let missing = JsonValue::parse(r#"{"step":1}"#).unwrap();
        assert!(EngineSnapshot::from_json_value(&missing).is_err());
        let ragged = JsonValue::parse(
            r#"{"step":0,"clamped_lead_hours":0,"cost":[0,0],"energy_wh":[0],
               "hits":[0,0],"overflow_hits":[0,0],"rejected_hits":[0,0],
               "binding_steps":[0,0],"load_series":[[],[]],
               "util_stats":[{"count":0},{"count":0}],
               "distances":{"bin_km":25,"weights":[0],"total_weight":0,"weighted_sum":0}}"#,
        )
        .unwrap();
        let err = EngineSnapshot::from_json_value(&ragged).unwrap_err();
        assert!(err.to_string().contains("energy_wh"), "unexpected error: {err}");
    }
}
