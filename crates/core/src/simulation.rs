//! The discrete-time cost simulator (§6.1 of the paper).
//!
//! The simulator steps through a traffic trace at 5-minute resolution,
//! letting a routing policy (with a global view) allocate each step's
//! per-state demand to clusters. Cluster energy is computed from the
//! allocation through the §5.1 power model, and multiplied by that hour's
//! (delayed) locational price to accumulate dollars. Reports capture total
//! and per-cluster cost, energy, utilization, 95th-percentile loads and
//! client–server distance statistics.

use crate::constraints::BandwidthTariff;
use crate::engine::{DemandSlice, PriceSlice, SimulationEngine};
use crate::report::SimulationReport;
use crate::run::RunOptions;
use std::borrow::Cow;
use wattroute_energy::model::EnergyModelParams;
use wattroute_market::price_table::PriceTable;
use wattroute_market::time::HourRange;
use wattroute_market::types::PriceSet;
use wattroute_routing::constraints::{ConstraintSet, OverflowMode};
use wattroute_routing::policy::RoutingPolicy;
use wattroute_workload::bandwidth::BandwidthProfile;
use wattroute_workload::trace::{Trace, STEPS_PER_HOUR};
use wattroute_workload::ClusterSet;

/// Static configuration of a simulation run (everything except the policy).
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationConfig {
    /// Per-server energy parameters applied to every cluster.
    pub energy: EnergyModelParams,
    /// Delay, in hours, between the market setting a price and the router
    /// seeing it. The paper conservatively uses one hour (§6.1, §6.4).
    pub reaction_delay_hours: u64,
    /// The constraints every routing decision must respect: capacity
    /// ceilings, per-cluster 95/5 bandwidth caps (typically derived from a
    /// baseline calibration pass — see
    /// [`CalibratedScenario`](crate::constraints::CalibratedScenario)),
    /// and the overflow mode. The simulator *borrows* this set on every
    /// reallocation; it is never cloned on the hot path.
    pub constraints: ConstraintSet,
    /// How many 5-minute steps share one routing decision. 1 re-routes every
    /// step; 12 re-routes hourly, which is exact for workloads that are
    /// constant within the hour (such as the replayed weekly profile used
    /// for the 39-month simulations) and far faster.
    ///
    /// The engine additionally re-routes whenever a step crosses an hour
    /// boundary, so a cached allocation never straddles hours and stale
    /// prices are never reused — intervals that do not divide twelve behave
    /// as "at most this often within the hour".
    pub reallocate_every_steps: usize,
    /// Optional 95/5 bandwidth tariff. When set, reports carry a
    /// per-cluster (and total) bandwidth bill priced on the observed 95th
    /// percentiles; when `None`, the bandwidth-accounting fields stay zero
    /// and are omitted from JSON (reports are byte-identical to
    /// pre-tariff ones).
    pub bandwidth_tariff: Option<BandwidthTariff>,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        Self {
            energy: EnergyModelParams::optimistic_future(),
            reaction_delay_hours: 1,
            constraints: ConstraintSet::unconstrained(),
            reallocate_every_steps: 1,
            bandwidth_tariff: None,
        }
    }
}

impl SimulationConfig {
    /// Replace the energy model.
    pub fn with_energy(mut self, energy: EnergyModelParams) -> Self {
        self.energy = energy;
        self
    }

    /// Set the reaction delay in hours.
    pub fn with_reaction_delay(mut self, hours: u64) -> Self {
        self.reaction_delay_hours = hours;
        self
    }

    /// Replace the whole constraint set.
    pub fn with_constraints(mut self, constraints: ConstraintSet) -> Self {
        self.constraints = constraints;
        self
    }

    /// Attach 95/5 bandwidth ceilings (keeping the rest of the constraint
    /// set).
    pub fn with_bandwidth_caps(mut self, caps: Vec<f64>) -> Self {
        self.constraints = self.constraints.with_bandwidth_caps(caps);
        self
    }

    /// Set the re-allocation interval in 5-minute steps.
    pub fn with_reallocation_interval(mut self, steps: usize) -> Self {
        assert!(steps >= 1, "reallocation interval must be at least one step");
        self.reallocate_every_steps = steps;
        self
    }

    /// Set the overflow mode (what happens to over-capacity demand).
    pub fn with_overflow(mut self, overflow: OverflowMode) -> Self {
        self.constraints = self.constraints.with_overflow(overflow);
        self
    }

    /// Attach a 95/5 bandwidth tariff so reports carry a bandwidth bill.
    pub fn with_bandwidth_tariff(mut self, tariff: BandwidthTariff) -> Self {
        self.bandwidth_tariff = Some(tariff);
        self
    }

    /// Start a validating [`SimulationConfigBuilder`] from the defaults.
    /// Unlike the `with_*` chain on the config itself (which panics on
    /// invalid values for historical compatibility), the builder defers
    /// every check to [`SimulationConfigBuilder::build`] /
    /// [`build_for`](SimulationConfigBuilder::build_for) and returns a
    /// [`ConfigError`] instead of panicking.
    pub fn builder() -> SimulationConfigBuilder {
        SimulationConfigBuilder::default()
    }

    /// Turn this config back into a builder (e.g. to re-validate after
    /// editing fields directly).
    pub fn into_builder(self) -> SimulationConfigBuilder {
        SimulationConfigBuilder { config: self }
    }

    /// Check this configuration against a deployment, returning every
    /// inconsistency as a [`ConfigError`] instead of panicking: a
    /// non-positive reallocation interval, constraint vectors whose length
    /// does not match the deployment, or negative ceilings/caps.
    pub fn validate_for(&self, clusters: &ClusterSet) -> Result<(), ConfigError> {
        self.validate_shape()?;
        if clusters.is_empty() {
            return Err(ConfigError::EmptyDeployment);
        }
        let n = clusters.len();
        if let Some(caps) = self.constraints.bandwidth_caps() {
            if caps.len() != n {
                return Err(ConfigError::BandwidthCapLength { caps: caps.len(), clusters: n });
            }
        }
        if let Some(ceilings) = self.constraints.capacity_ceilings() {
            if ceilings.len() != n {
                return Err(ConfigError::CapacityCeilingLength {
                    ceilings: ceilings.len(),
                    clusters: n,
                });
            }
        }
        Ok(())
    }

    /// The deployment-independent half of [`Self::validate_for`].
    fn validate_shape(&self) -> Result<(), ConfigError> {
        if self.reallocate_every_steps < 1 {
            return Err(ConfigError::ZeroReallocationInterval);
        }
        if let Some(caps) = self.constraints.bandwidth_caps() {
            if let Some(i) = caps.iter().position(|c| c.is_nan() || *c < 0.0) {
                return Err(ConfigError::NegativeBandwidthCap { cluster: i });
            }
        }
        if let Some(ceilings) = self.constraints.capacity_ceilings() {
            if let Some(i) = ceilings.iter().position(|c| c.is_nan() || *c < 0.0) {
                return Err(ConfigError::NegativeCapacityCeiling { cluster: i });
            }
        }
        Ok(())
    }
}

/// An inconsistency between a [`SimulationConfig`] and the deployment it is
/// applied to, reported by [`SimulationConfigBuilder::build`] /
/// [`build_for`](SimulationConfigBuilder::build_for) and
/// [`SimulationConfig::validate_for`] instead of the panics the historical
/// `with_*` chain raises.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The deployment has no clusters to route over.
    EmptyDeployment,
    /// The reallocation interval is zero (the router would never route).
    ZeroReallocationInterval,
    /// The 95/5 bandwidth cap vector does not match the deployment size.
    BandwidthCapLength {
        /// Entries in the cap vector.
        caps: usize,
        /// Clusters in the deployment.
        clusters: usize,
    },
    /// The capacity ceiling vector does not match the deployment size.
    CapacityCeilingLength {
        /// Entries in the ceiling vector.
        ceilings: usize,
        /// Clusters in the deployment.
        clusters: usize,
    },
    /// A bandwidth cap is negative or NaN (a cap of zero or `+∞` is valid).
    NegativeBandwidthCap {
        /// Index of the offending cluster.
        cluster: usize,
    },
    /// A capacity ceiling is negative or NaN.
    NegativeCapacityCeiling {
        /// Index of the offending cluster.
        cluster: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::EmptyDeployment => write!(f, "deployment has no clusters"),
            ConfigError::ZeroReallocationInterval => {
                write!(f, "reallocation interval must be at least one step")
            }
            ConfigError::BandwidthCapLength { caps, clusters } => {
                write!(f, "{caps} bandwidth caps for {clusters} clusters")
            }
            ConfigError::CapacityCeilingLength { ceilings, clusters } => {
                write!(f, "{ceilings} capacity ceilings for {clusters} clusters")
            }
            ConfigError::NegativeBandwidthCap { cluster } => {
                write!(f, "bandwidth cap for cluster {cluster} is negative or NaN")
            }
            ConfigError::NegativeCapacityCeiling { cluster } => {
                write!(f, "capacity ceiling for cluster {cluster} is negative or NaN")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// A validating builder for [`SimulationConfig`].
///
/// The chain mirrors the config's own `with_*` methods but defers all
/// checking to the build step, which returns a [`ConfigError`] instead of
/// panicking mid-chain:
///
/// ```
/// use wattroute::prelude::*;
///
/// let clusters = ClusterSet::akamai_like_nine();
/// let config = SimulationConfig::builder()
///     .with_reaction_delay(2)
///     .with_bandwidth_caps(vec![1.0e6; clusters.len()])
///     .with_overflow(OverflowMode::Reject)
///     .build_for(&clusters)
///     .expect("consistent configuration");
/// assert_eq!(config.reaction_delay_hours, 2);
///
/// // An inconsistent combination is an Err, not a panic:
/// let err = SimulationConfig::builder()
///     .with_bandwidth_caps(vec![1.0e6; 3])
///     .build_for(&clusters)
///     .unwrap_err();
/// assert_eq!(err, ConfigError::BandwidthCapLength { caps: 3, clusters: 9 });
/// ```
///
/// Invariants enforced at build time:
/// - the reallocation interval is at least one step;
/// - bandwidth caps and capacity ceilings are non-negative (zero and `+∞`
///   are meaningful: "send nothing here" and "unconstrained");
/// - with [`Self::build_for`], every positional constraint vector matches
///   the deployment's cluster count and the deployment is non-empty.
#[derive(Debug, Clone, Default)]
pub struct SimulationConfigBuilder {
    config: SimulationConfig,
}

impl SimulationConfigBuilder {
    /// Replace the energy model.
    pub fn with_energy(mut self, energy: EnergyModelParams) -> Self {
        self.config.energy = energy;
        self
    }

    /// Set the reaction delay in hours.
    pub fn with_reaction_delay(mut self, hours: u64) -> Self {
        self.config.reaction_delay_hours = hours;
        self
    }

    /// Replace the whole constraint set.
    pub fn with_constraints(mut self, constraints: ConstraintSet) -> Self {
        self.config.constraints = constraints;
        self
    }

    /// Attach 95/5 bandwidth ceilings (keeping the rest of the constraint
    /// set).
    pub fn with_bandwidth_caps(mut self, caps: Vec<f64>) -> Self {
        self.config.constraints = self.config.constraints.with_bandwidth_caps(caps);
        self
    }

    /// Attach capacity ceilings that tighten the clusters' nominal
    /// capacities (keeping the rest of the constraint set).
    pub fn with_capacity_ceilings(mut self, ceilings: Vec<f64>) -> Self {
        self.config.constraints = self.config.constraints.with_capacity_ceilings(ceilings);
        self
    }

    /// Set the re-allocation interval in 5-minute steps.
    pub fn with_reallocation_interval(mut self, steps: usize) -> Self {
        self.config.reallocate_every_steps = steps;
        self
    }

    /// Set the overflow mode (what happens to over-capacity demand).
    pub fn with_overflow(mut self, overflow: OverflowMode) -> Self {
        self.config.constraints = self.config.constraints.with_overflow(overflow);
        self
    }

    /// Attach a 95/5 bandwidth tariff so reports carry a bandwidth bill.
    pub fn with_bandwidth_tariff(mut self, tariff: BandwidthTariff) -> Self {
        self.config.bandwidth_tariff = Some(tariff);
        self
    }

    /// Validate the deployment-independent invariants and produce the
    /// config. Positional lengths cannot be checked without a deployment —
    /// use [`Self::build_for`] when one is at hand.
    pub fn build(self) -> Result<SimulationConfig, ConfigError> {
        self.config.validate_shape()?;
        Ok(self.config)
    }

    /// Validate everything — including positional constraint vectors —
    /// against a concrete deployment, and produce the config.
    pub fn build_for(self, clusters: &ClusterSet) -> Result<SimulationConfig, ConfigError> {
        self.config.validate_for(clusters)?;
        Ok(self.config)
    }
}

/// An optional sink for the per-step, per-cluster loads a simulation
/// routes — the raw series a 95/5 calibration pass needs (the report only
/// keeps distribution statistics). Hand one to a run via
/// [`RunOptions::record_loads`](crate::run::RunOptions::record_loads);
/// afterwards [`LoadRecorder::bandwidth_profile`] derives the per-cluster
/// 95th-percentile levels that
/// [`CalibratedScenario`](crate::constraints::CalibratedScenario) turns
/// into a [`ConstraintSet`].
#[derive(Debug, Clone, Default)]
pub struct LoadRecorder {
    cluster_loads: Vec<Vec<f64>>,
}

impl LoadRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded series: `cluster_loads()[cluster][step]` in
    /// hits/second at 5-minute resolution. Empty before a run.
    pub fn cluster_loads(&self) -> &[Vec<f64>] {
        &self.cluster_loads
    }

    /// Derive the 95/5 bandwidth profile of the recorded run (`None`
    /// before a run).
    pub fn bandwidth_profile(&self) -> Option<BandwidthProfile> {
        if self.cluster_loads.is_empty() {
            return None;
        }
        BandwidthProfile::from_cluster_loads(&self.cluster_loads)
    }
}

/// The hour range spanned by a trace's steps, including a partial trailing
/// hour (unlike [`Trace::hour_range`], which rounds down — the price table
/// must cover every hour any step falls in).
pub(crate) fn step_coverage(trace: &Trace) -> HourRange {
    let covered = trace.num_steps().div_ceil(STEPS_PER_HOUR) as u64;
    HourRange::new(trace.start, trace.start.plus_hours(covered))
}

/// A bound simulation: deployment + trace + compiled prices + configuration.
#[derive(Debug, Clone)]
pub struct Simulation<'a> {
    clusters: &'a ClusterSet,
    trace: &'a Trace,
    table: Cow<'a, PriceTable>,
    config: SimulationConfig,
}

impl<'a> Simulation<'a> {
    /// Bind a simulation, compiling the price set into a dense
    /// [`PriceTable`] for the trace range. Validates that every cluster's
    /// hub has a price series covering the trace.
    ///
    /// # Panics
    /// Panics on missing price series, coverage gaps, or cap-length
    /// mismatches — these are configuration errors, not data conditions.
    pub fn new(
        clusters: &'a ClusterSet,
        trace: &'a Trace,
        prices: &'a PriceSet,
        config: SimulationConfig,
    ) -> Self {
        assert!(!clusters.is_empty(), "deployment has no clusters");
        assert!(trace.num_steps() > 0, "trace is empty");
        let table = PriceTable::build(
            prices,
            &clusters.hub_ids(),
            step_coverage(trace),
            config.reaction_delay_hours,
        );
        Self::with_price_table(clusters, trace, Cow::Owned(table), config)
    }

    /// Bind a simulation to an already-compiled [`PriceTable`] (borrowed, so
    /// one table can be shared across many concurrent runs — the scenario
    /// sweep runner does exactly this).
    ///
    /// # Panics
    /// Panics if the table's hub order, range, or delay do not match the
    /// deployment, trace, and configuration.
    pub fn with_price_table(
        clusters: &'a ClusterSet,
        trace: &'a Trace,
        table: Cow<'a, PriceTable>,
        config: SimulationConfig,
    ) -> Self {
        assert!(!clusters.is_empty(), "deployment has no clusters");
        assert!(trace.num_steps() > 0, "trace is empty");
        config.constraints.validate(clusters.len());
        assert_eq!(table.hubs(), clusters.hub_ids(), "price table hub order mismatch");
        assert_eq!(
            table.delay_hours(),
            config.reaction_delay_hours,
            "price table compiled for a different reaction delay"
        );
        let needed = step_coverage(trace);
        let covered = table.range();
        assert!(
            covered.start.0 <= needed.start.0 && covered.end.0 >= needed.end.0,
            "price table ({covered:?}) does not cover the trace ({needed:?})"
        );
        Self { clusters, trace, table, config }
    }

    /// The configuration.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// The compiled price table driving this simulation.
    pub fn price_table(&self) -> &PriceTable {
        &self.table
    }

    /// Run a policy over the whole trace and produce a report — the batch
    /// driver over the incremental tick core
    /// ([`SimulationEngine`]): one `tick`
    /// per trace step, prices looked up in the compiled table. Bit-identical
    /// to the historical monolithic loop.
    ///
    /// Honoured options: [`RunOptions::record_loads`]. A configuration
    /// override or artifact cache belongs to the scenario and sweep layers
    /// respectively and panics here (see [`crate::run`]).
    pub fn execute(
        &self,
        policy: &mut dyn RoutingPolicy,
        options: RunOptions<'_>,
    ) -> SimulationReport {
        let RunOptions { config, recorder, artifacts } = options;
        assert!(
            config.is_none(),
            "RunOptions::with_config overrides a scenario's configuration; \
             a Simulation is already bound to one — build it with the desired config instead"
        );
        assert!(
            artifacts.is_none(),
            "RunOptions::reuse_artifacts applies to scenario sweeps; \
             a Simulation already binds one compiled price table"
        );

        let mut engine =
            SimulationEngine::new(self.clusters, &self.trace.states, self.config.clone())
                .with_clamped_lead_hours(self.table.clamped_lead_hours());
        for (i, step) in self.trace.steps().iter().enumerate() {
            let hour = self.trace.step_hour(i);
            let prices = {
                // Sampled on the engine's cadence: timing a sub-µs table
                // lookup every step costs more than the lookup itself.
                let _price_span = if i % crate::engine::SPAN_SAMPLE_EVERY == 0 {
                    wattroute_obs::span!("engine.price_view")
                } else {
                    wattroute_obs::Span::disabled()
                };
                PriceSlice::new(
                    hour,
                    self.table.delayed_at(hour).expect("table covers the trace"),
                    // Spot prices used for billing are the *actual* prices
                    // of this hour (the delay only affects what the router
                    // saw).
                    self.table.billing_at(hour).expect("table covers the trace"),
                )
            };
            engine.tick(policy, prices, DemandSlice::new(&step.us_demand));
        }
        let report = engine.report();
        if let Some(recorder) = recorder {
            recorder.cluster_loads = engine.into_load_series();
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wattroute_market::generator::PriceGenerator;
    use wattroute_market::time::{HourRange, SimHour};
    use wattroute_routing::prelude::*;
    use wattroute_workload::SyntheticWorkloadConfig;

    fn small_setup() -> (ClusterSet, Trace, PriceSet) {
        let clusters = ClusterSet::akamai_like_nine();
        let start = SimHour::from_date(2008, 12, 19);
        let range = HourRange::new(start, start.plus_hours(3 * 24));
        let trace = SyntheticWorkloadConfig::default().generate(range);
        // Price data must extend one delay-hour before... delayed_price_at
        // clamps, so the same range suffices.
        let prices = PriceGenerator::nine_cluster_default(7).realtime_hourly(range);
        (clusters, trace, prices)
    }

    #[test]
    fn energy_and_cost_are_positive_and_consistent() {
        let (clusters, trace, prices) = small_setup();
        let sim = Simulation::new(&clusters, &trace, &prices, SimulationConfig::default());
        let report = sim.execute(&mut NearestClusterPolicy::new(), RunOptions::new());
        assert_eq!(report.steps, trace.num_steps());
        assert!(report.total_cost_dollars > 0.0);
        assert!(report.total_energy_mwh > 0.0);
        assert_eq!(report.clusters.len(), 9);
        let sum: f64 = report.clusters.iter().map(|c| c.cost_dollars).sum();
        assert!((sum - report.total_cost_dollars).abs() < 1e-6);
        // Every cluster consumed at least its idle energy.
        assert!(report.clusters.iter().all(|c| c.energy_mwh > 0.0));
    }

    #[test]
    fn price_optimizer_is_cheaper_than_baseline_with_elastic_energy() {
        let (clusters, trace, prices) = small_setup();
        let config =
            SimulationConfig::default().with_energy(EnergyModelParams::optimistic_future());
        let sim = Simulation::new(&clusters, &trace, &prices, config);
        let baseline = sim.execute(&mut AkamaiLikePolicy::default(), RunOptions::new());
        let optimized = sim
            .execute(&mut PriceConsciousPolicy::with_distance_threshold(1500.0), RunOptions::new());
        assert!(
            optimized.total_cost_dollars < baseline.total_cost_dollars,
            "optimizer {} should beat baseline {}",
            optimized.total_cost_dollars,
            baseline.total_cost_dollars
        );
        // And it does so by moving load, which lengthens paths.
        assert!(optimized.mean_distance_km >= baseline.mean_distance_km * 0.9);
    }

    #[test]
    fn inelastic_clusters_see_much_smaller_savings() {
        let (clusters, trace, prices) = small_setup();
        let elastic_cfg =
            SimulationConfig::default().with_energy(EnergyModelParams::optimistic_future());
        let inelastic_cfg =
            SimulationConfig::default().with_energy(EnergyModelParams::no_power_management());

        let elastic_sim = Simulation::new(&clusters, &trace, &prices, elastic_cfg);
        let inelastic_sim = Simulation::new(&clusters, &trace, &prices, inelastic_cfg);

        let mut baseline = AkamaiLikePolicy::default();
        let mut optimizer = PriceConsciousPolicy::with_distance_threshold(1500.0);

        let elastic_savings = {
            let base = elastic_sim.execute(&mut baseline, RunOptions::new());
            let opt = elastic_sim.execute(&mut optimizer, RunOptions::new());
            opt.savings_percent_vs(&base)
        };
        let inelastic_savings = {
            let base = inelastic_sim.execute(&mut baseline, RunOptions::new());
            let opt = inelastic_sim.execute(&mut optimizer, RunOptions::new());
            opt.savings_percent_vs(&base)
        };
        assert!(
            elastic_savings > inelastic_savings + 2.0,
            "elasticity should matter: elastic {elastic_savings:.2}% vs inelastic {inelastic_savings:.2}%"
        );
        assert!(inelastic_savings > -1.0, "inelastic savings should not be substantially negative");
    }

    #[test]
    fn bandwidth_caps_reduce_savings_but_are_respected() {
        let (clusters, trace, prices) = small_setup();
        let unconstrained_cfg = SimulationConfig::default();
        let sim = Simulation::new(&clusters, &trace, &prices, unconstrained_cfg.clone());
        let baseline = sim.execute(&mut AkamaiLikePolicy::default(), RunOptions::new());

        let caps: Vec<f64> = baseline.clusters.iter().map(|c| c.p95_hits_per_sec).collect();
        let constrained_cfg = unconstrained_cfg.with_bandwidth_caps(caps.clone());
        let constrained_sim = Simulation::new(&clusters, &trace, &prices, constrained_cfg);

        let mut optimizer = PriceConsciousPolicy::with_distance_threshold(2500.0);
        let unconstrained = sim.execute(&mut optimizer, RunOptions::new());
        let constrained = constrained_sim.execute(&mut optimizer, RunOptions::new());

        assert!(constrained.bandwidth_constrained);
        assert!(!unconstrained.bandwidth_constrained);
        assert!(
            constrained.total_cost_dollars >= unconstrained.total_cost_dollars - 1e-6,
            "respecting 95/5 cannot be cheaper than ignoring it"
        );
        // The constrained run's p95 stays near the caps (small tolerance for
        // the fact that caps bind per step while p95 is a distribution
        // statistic).
        assert!(constrained.respects_p95_caps(&caps, 0.05));
    }

    #[test]
    fn hourly_reallocation_matches_per_step_for_hourly_constant_demand() {
        let clusters = ClusterSet::akamai_like_nine();
        let start = SimHour::from_date(2006, 3, 6);
        let range = HourRange::new(start, start.plus_hours(48));
        let trace_raw = SyntheticWorkloadConfig::default().generate(range);
        // Make demand constant within each hour by replaying a weekly profile.
        let long = SyntheticWorkloadConfig::default().generate(HourRange::akamai_24_days());
        let profile = wattroute_workload::derive::WeeklyProfile::from_trace(&long).unwrap();
        let trace = profile.replay(range);
        drop(trace_raw);
        let prices = PriceGenerator::nine_cluster_default(3).realtime_hourly(range);

        let per_step_cfg = SimulationConfig::default();
        let hourly_cfg = SimulationConfig::default().with_reallocation_interval(12);
        let mut policy = PriceConsciousPolicy::with_distance_threshold(1500.0);
        let a = Simulation::new(&clusters, &trace, &prices, per_step_cfg)
            .execute(&mut policy, RunOptions::new());
        let b = Simulation::new(&clusters, &trace, &prices, hourly_cfg)
            .execute(&mut policy, RunOptions::new());
        assert!((a.total_cost_dollars - b.total_cost_dollars).abs() < 1e-6 * a.total_cost_dollars);
    }

    #[test]
    fn oversubscribed_deployment_reports_overflow() {
        let (clusters, trace, prices) = small_setup();
        // Shrink the deployment until demand far exceeds total capacity.
        let tiny = clusters.scaled(1e-6);
        let sim = Simulation::new(&tiny, &trace, &prices, SimulationConfig::default());
        let report = sim.execute(&mut NearestClusterPolicy::new(), RunOptions::new());
        assert!(
            report.total_overflow_hits > 0.0,
            "demand beyond capacity must be reported, not silently billed as served"
        );
        assert!(report.clusters.iter().any(|c| c.overflow_hits > 0.0));
        let sum: f64 = report.clusters.iter().map(|c| c.overflow_hits).sum();
        assert!((sum - report.total_overflow_hits).abs() < 1e-6 * sum.max(1.0));

        // A comfortably provisioned run reports none.
        let roomy = Simulation::new(&clusters, &trace, &prices, SimulationConfig::default());
        let ok = roomy.execute(&mut NearestClusterPolicy::new(), RunOptions::new());
        assert_eq!(ok.total_overflow_hits, 0.0);
        assert!(ok.clusters.iter().all(|c| c.overflow_hits == 0.0));
    }

    #[test]
    fn reject_mode_counts_rejections_and_leaves_cost_untouched() {
        let (clusters, trace, prices) = small_setup();
        let tiny = clusters.scaled(1e-6); // hopelessly over-subscribed
        let billed_cfg = SimulationConfig::default();
        let reject_cfg = SimulationConfig::default().with_overflow(OverflowMode::Reject);

        let billed = Simulation::new(&tiny, &trace, &prices, billed_cfg)
            .execute(&mut NearestClusterPolicy::new(), RunOptions::new());
        let rejected = Simulation::new(&tiny, &trace, &prices, reject_cfg)
            .execute(&mut NearestClusterPolicy::new(), RunOptions::new());

        // The same over-capacity demand lands in exactly one bucket per mode.
        assert!(billed.total_overflow_hits > 0.0);
        assert_eq!(billed.total_rejected_hits, 0.0);
        assert_eq!(rejected.total_overflow_hits, 0.0);
        assert!(
            (rejected.total_rejected_hits - billed.total_overflow_hits).abs()
                < 1e-9 * billed.total_overflow_hits,
            "rejected demand must equal what BillAtCapacity calls overflow"
        );
        // Served hits shrink by exactly the rejected amount; money and
        // energy are identical (the power model saturates either way).
        let billed_hits: f64 = billed.clusters.iter().map(|c| c.total_hits).sum();
        let served_hits: f64 = rejected.clusters.iter().map(|c| c.total_hits).sum();
        assert!(
            (billed_hits - served_hits - rejected.total_rejected_hits).abs() < 1e-6 * billed_hits
        );
        assert_eq!(billed.total_cost_dollars, rejected.total_cost_dollars);
        assert_eq!(billed.total_energy_mwh, rejected.total_energy_mwh);

        // Per-cluster sums stay consistent.
        let sum: f64 = rejected.clusters.iter().map(|c| c.rejected_hits).sum();
        assert!((sum - rejected.total_rejected_hits).abs() < 1e-6 * sum.max(1.0));

        // A comfortably provisioned run rejects nothing in either mode.
        let roomy_cfg = SimulationConfig::default().with_overflow(OverflowMode::Reject);
        let ok = Simulation::new(&clusters, &trace, &prices, roomy_cfg)
            .execute(&mut NearestClusterPolicy::new(), RunOptions::new());
        assert_eq!(ok.total_rejected_hits, 0.0);
    }

    #[test]
    fn delayed_price_clamp_is_surfaced_in_the_report() {
        let (clusters, trace, prices) = small_setup();
        // The generated price series cover exactly the trace range, so a
        // 24-hour delay cannot see real history for the first day: the
        // report must say so rather than quietly reusing the first sample.
        let config = SimulationConfig::default().with_reaction_delay(24);
        let sim = Simulation::new(&clusters, &trace, &prices, config);
        let report = sim.execute(&mut NearestClusterPolicy::new(), RunOptions::new());
        assert_eq!(report.delay_clamped_hours, 24);

        // With history extending a day before the trace, nothing clamps.
        let wide_range = HourRange::new(SimHour(trace.start.0 - 24), trace.hour_range().end);
        let wide = PriceGenerator::nine_cluster_default(7).realtime_hourly(wide_range);
        let config = SimulationConfig::default().with_reaction_delay(24);
        let sim = Simulation::new(&clusters, &trace, &wide, config);
        let report = sim.execute(&mut NearestClusterPolicy::new(), RunOptions::new());
        assert_eq!(report.delay_clamped_hours, 0);
    }

    #[test]
    fn reallocation_never_straddles_hour_boundaries() {
        // An interval that does not divide the 12 steps/hour used to let a
        // cached allocation cross into the next hour and route on the
        // previous hour's prices. Pin the fix: with demand constant within
        // each hour, a 5-step interval must now match per-step routing
        // exactly (every allocation inside one hour sees identical inputs).
        let clusters = ClusterSet::akamai_like_nine();
        let start = SimHour::from_date(2006, 3, 6);
        let range = HourRange::new(start, start.plus_hours(48));
        let long = SyntheticWorkloadConfig::default().generate(HourRange::akamai_24_days());
        let profile = wattroute_workload::derive::WeeklyProfile::from_trace(&long).unwrap();
        let trace = profile.replay(range);
        let prices = PriceGenerator::nine_cluster_default(3).realtime_hourly(range);

        let per_step_cfg = SimulationConfig::default();
        let ragged_cfg = SimulationConfig::default().with_reallocation_interval(5);
        let mut policy = PriceConsciousPolicy::with_distance_threshold(1500.0);
        let a = Simulation::new(&clusters, &trace, &prices, per_step_cfg)
            .execute(&mut policy, RunOptions::new());
        let b = Simulation::new(&clusters, &trace, &prices, ragged_cfg)
            .execute(&mut policy, RunOptions::new());
        assert!(
            (a.total_cost_dollars - b.total_cost_dollars).abs() < 1e-9 * a.total_cost_dollars,
            "allocations must re-trigger on hour change: {} vs {}",
            a.total_cost_dollars,
            b.total_cost_dollars
        );
    }

    #[test]
    fn shared_price_table_matches_owned_table() {
        let (clusters, trace, prices) = small_setup();
        let config = SimulationConfig::default();
        let owned = Simulation::new(&clusters, &trace, &prices, config.clone());
        let table = owned.price_table().clone();
        let borrowed = Simulation::with_price_table(
            &clusters,
            &trace,
            std::borrow::Cow::Borrowed(&table),
            config,
        );
        let mut policy = PriceConsciousPolicy::with_distance_threshold(1500.0);
        assert_eq!(
            owned.execute(&mut policy, RunOptions::new()),
            borrowed.execute(&mut policy, RunOptions::new())
        );
    }

    #[test]
    #[should_panic(expected = "different reaction delay")]
    fn mismatched_table_delay_panics() {
        let (clusters, trace, prices) = small_setup();
        let base = Simulation::new(&clusters, &trace, &prices, SimulationConfig::default());
        let table = base.price_table().clone();
        let other = SimulationConfig::default().with_reaction_delay(5);
        let _ = Simulation::with_price_table(
            &clusters,
            &trace,
            std::borrow::Cow::Borrowed(&table),
            other,
        );
    }

    #[test]
    #[should_panic(expected = "no price series")]
    fn missing_price_series_panics() {
        let clusters = ClusterSet::akamai_like_nine();
        let start = SimHour::from_date(2008, 12, 19);
        let range = HourRange::new(start, start.plus_hours(24));
        let trace = SyntheticWorkloadConfig::default().generate(range);
        // Prices for only one hub.
        let all = PriceGenerator::nine_cluster_default(7).realtime_hourly(range);
        let one = PriceSet::new(vec![all.series[0].clone()]);
        let _ = Simulation::new(&clusters, &trace, &one, SimulationConfig::default());
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn short_price_series_panics() {
        let clusters = ClusterSet::akamai_like_nine();
        let start = SimHour::from_date(2008, 12, 19);
        let trace_range = HourRange::new(start, start.plus_hours(48));
        let price_range = HourRange::new(start, start.plus_hours(24));
        let trace = SyntheticWorkloadConfig::default().generate(trace_range);
        let prices = PriceGenerator::nine_cluster_default(7).realtime_hourly(price_range);
        let _ = Simulation::new(&clusters, &trace, &prices, SimulationConfig::default());
    }
}
