//! Hierarchical replay: tick a region → metro → site tree at CDN scale.
//!
//! [`HierarchicalReplay`] is the tree-native counterpart of the flat batch
//! [`Simulation`](crate::simulation::Simulation). It partitions a
//! [`Topology`]'s sites by region, gives each region a *shard* — a
//! region-local structure-of-arrays state block (price rows, demand mask,
//! per-site accumulators, all reused across steps with no per-step
//! allocation) — and replays the whole trace through each shard, either
//! sequentially ([`HierarchicalReplay::run`]) or on scoped worker threads
//! ([`HierarchicalReplay::run_sharded`]). A deterministic merge then folds
//! the shard results, in region order, into one [`SimulationReport`]:
//! per-site [`ClusterReport`]s concatenate in global site order, distance
//! histograms merge bin-wise, and tier rollups fold the sites' online
//! utilization accumulators with [`OnlineStats::merge`].
//!
//! Three equivalences are pinned by `tests/proptest_hierarchy_equivalence.rs`:
//!
//! 1. **Sharded ≡ sequential** — by construction: shards share nothing and
//!    the merge visits regions in index order either way.
//! 2. **Trivial embedding ≡ flat engine** — a one-region tree with one
//!    site per metro and no tier caps (see
//!    [`single_region_of`](wattroute_workload::hierarchy::single_region_of))
//!    replays bit-identical to [`Simulation`](crate::simulation::Simulation)
//!    over the same deployment, and its report carries `tiers: None`, so
//!    even the JSON matches byte for byte.
//! 3. **Conservation** — demand is owned by exactly one region
//!    ([`Topology::assign_states`]), so hits and energy sum across tiers.
//!
//! # Why the shard loop is fast
//!
//! Within one allocation epoch (the engine re-routes at least hourly, and
//! billing prices only change hourly), the allocation — and therefore every
//! per-site quantity the flat engine recomputes each step: loads,
//! utilization, watt-hours, per-step dollars, overflow deltas, binding
//! flags — is *constant*. The shard loop computes those once per
//! reallocation and degrades the per-step work to pure accumulating adds,
//! which is what makes a 1000-site multi-year replay finish in seconds.
//! Every add happens once per step in the same order as the flat engine's,
//! so the hoisting is bit-exact, not approximate. Per-site load series are
//! kept in [`SampleReservoir`]s (exact until the capacity, decimated
//! beyond), so memory stays flat however long the trace runs.

use crate::report::{
    ClusterReport, DistanceHistogram, SimulationReport, TierNodeReport, TierRollup,
};
use crate::simulation::{step_coverage, SimulationConfig};
use wattroute_energy::cost::energy_cost_dollars;
use wattroute_energy::model::ClusterPowerModel;
use wattroute_geo::topology::Topology;
use wattroute_geo::HubId;
use wattroute_market::price_table::PriceTable;
use wattroute_market::time::SimHour;
use wattroute_market::types::PriceSet;
use wattroute_routing::allocation::Allocation;
use wattroute_routing::constraints::{ConstraintSet, OverflowMode, TierCaps};
use wattroute_routing::policy::{RoutingContext, RoutingPolicy};
use wattroute_stats::{OnlineStats, SampleReservoir};
use wattroute_workload::hierarchy::site_clusters;
use wattroute_workload::trace::{Trace, STEP_SECONDS};
use wattroute_workload::ClusterSet;

/// A thread-safe factory producing one fresh policy instance per shard.
/// Each region routes with its own instance, so policies may carry mutable
/// caches without synchronisation.
pub type PolicyFactory<'f> = dyn Fn() -> Box<dyn RoutingPolicy> + Sync + 'f;

/// Default per-site load-series reservoir capacity: exact percentiles for
/// traces up to ~14 days of 5-minute steps, decimated (still deterministic)
/// beyond.
pub const DEFAULT_RESERVOIR_CAPACITY: usize = 4096;

/// Everything accumulated by one region's shard over a whole trace.
struct ShardResult {
    labels: Vec<String>,
    cost: Vec<f64>,
    energy_wh: Vec<f64>,
    hits: Vec<f64>,
    overflow_hits: Vec<f64>,
    rejected_hits: Vec<f64>,
    binding_steps: Vec<usize>,
    util_stats: Vec<OnlineStats>,
    reservoirs: Vec<SampleReservoir>,
    peak: Vec<f64>,
    distances: DistanceHistogram,
    policy_name: String,
    clamped_lead_hours: u64,
    /// The region's slice of the globally accounted 95/5 caps, when a
    /// tariff made caps reportable.
    accounted_caps: Option<Vec<f64>>,
}

/// A hierarchical batch replay: topology + trace + prices + configuration.
///
/// See the [module docs](self) for the sharding and equivalence story.
pub struct HierarchicalReplay<'a> {
    topology: &'a Topology,
    trace: &'a Trace,
    prices: &'a PriceSet,
    config: SimulationConfig,
    reservoir_capacity: usize,
}

impl<'a> HierarchicalReplay<'a> {
    /// Bind a replay. Positional constraint vectors in `config` must align
    /// with the topology's site order; if the topology carries tier caps
    /// and the configuration does not already hold a [`TierCaps`], they
    /// are lifted from the topology automatically.
    ///
    /// # Panics
    /// Panics on an empty trace or on constraint vectors whose length does
    /// not match the site count.
    pub fn new(
        topology: &'a Topology,
        trace: &'a Trace,
        prices: &'a PriceSet,
        mut config: SimulationConfig,
    ) -> Self {
        assert!(trace.num_steps() > 0, "trace is empty");
        if config.constraints.tier_caps().is_none() {
            if let Some(tiers) = TierCaps::from_topology(topology) {
                config.constraints = config.constraints.with_tier_caps(tiers);
            }
        }
        config.constraints.validate(topology.num_sites());
        Self { topology, trace, prices, config, reservoir_capacity: DEFAULT_RESERVOIR_CAPACITY }
    }

    /// Override the per-site load-series reservoir capacity (minimum 2).
    /// Percentiles are exact while a trace fits the capacity; longer traces
    /// are decimated deterministically.
    pub fn with_reservoir_capacity(mut self, capacity: usize) -> Self {
        self.reservoir_capacity = capacity;
        self
    }

    /// The configuration in force (tier caps already lifted).
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// Replay every region sequentially and merge. Bit-identical to
    /// [`Self::run_sharded`].
    pub fn run(&self, make_policy: &PolicyFactory<'_>) -> SimulationReport {
        let owners = self.topology.assign_states(&self.trace.states);
        let shards: Vec<ShardResult> = (0..self.topology.num_regions())
            .map(|region| {
                let mut policy = make_policy();
                self.run_region(region, &owners, policy.as_mut())
            })
            .collect();
        self.merge(shards)
    }

    /// Replay regions on scoped worker threads (one per region) and merge
    /// deterministically. Shards share nothing, and the merge consumes
    /// results in region index order, so the report is bit-identical to
    /// [`Self::run`].
    pub fn run_sharded(&self, make_policy: &PolicyFactory<'_>) -> SimulationReport {
        let owners = self.topology.assign_states(&self.trace.states);
        let n_regions = self.topology.num_regions();
        let mut slots: Vec<Option<ShardResult>> = Vec::with_capacity(n_regions);
        slots.resize_with(n_regions, || None);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n_regions);
            for (region, slot) in slots.iter_mut().enumerate() {
                let owners = &owners;
                handles.push(scope.spawn(move || {
                    let mut policy = make_policy();
                    *slot = Some(self.run_region(region, owners, policy.as_mut()));
                }));
            }
            for handle in handles {
                handle.join().expect("shard thread panicked");
            }
        });
        self.merge(slots.into_iter().map(|s| s.expect("every shard filled")).collect())
    }

    /// Tick one region's shard over the whole trace.
    fn run_region(
        &self,
        region: usize,
        owners: &[usize],
        policy: &mut dyn RoutingPolicy,
    ) -> ShardResult {
        let _shard_span = wattroute_obs::span!("hierarchy.shard");
        let topology = self.topology;
        let (s0, s1) = topology.region_sites(region);
        let n_sites = s1 - s0;
        let trace = self.trace;
        let states = &trace.states;
        let config = &self.config;

        // Region-local deployment, in global site order restricted to the
        // region's contiguous range.
        let region_clusters: ClusterSet = site_clusters_range(topology, s0, s1);
        let labels: Vec<String> =
            region_clusters.labels().into_iter().map(str::to_string).collect();

        // One price column per *distinct* hub (sites share metros), plus a
        // site → column indirection. For a trivial embedding the distinct
        // hubs are exactly the cluster-order hub ids, so the compiled
        // table matches the flat simulation's byte for byte.
        let mut distinct_hubs: Vec<HubId> = Vec::new();
        let hub_row: Vec<usize> = (s0..s1)
            .map(|s| {
                let hub = topology.site_hub(s);
                match distinct_hubs.iter().position(|&h| h == hub) {
                    Some(i) => i,
                    None => {
                        distinct_hubs.push(hub);
                        distinct_hubs.len() - 1
                    }
                }
            })
            .collect();
        let table = PriceTable::build(
            self.prices,
            &distinct_hubs,
            step_coverage(trace),
            config.reaction_delay_hours,
        );

        // The region's slice of the global constraint set, with tier caps
        // localised (this region's metros, this region alone).
        let region_constraints = slice_constraints(&config.constraints, topology, region);
        let tariff = config.bandwidth_tariff.as_ref();
        let accounted_caps: Option<Vec<f64>> =
            tariff.and(config.constraints.bandwidth_caps()).map(|caps| caps[s0..s1].to_vec());

        let power_models: Vec<ClusterPowerModel> = region_clusters
            .clusters()
            .iter()
            .map(|c| ClusterPowerModel::new(config.energy, c.servers))
            .collect();
        let capacities: Vec<f64> =
            region_clusters.clusters().iter().map(|c| c.capacity_hits_per_sec()).collect();

        // SoA accumulators, allocated once.
        let mut cost = vec![0.0f64; n_sites];
        let mut energy_wh = vec![0.0f64; n_sites];
        let mut hits = vec![0.0f64; n_sites];
        let mut overflow_hits = vec![0.0f64; n_sites];
        let mut rejected_hits = vec![0.0f64; n_sites];
        let mut binding_steps = vec![0usize; n_sites];
        let mut util_stats = vec![OnlineStats::new(); n_sites];
        let mut reservoirs: Vec<SampleReservoir> =
            (0..n_sites).map(|_| SampleReservoir::new(self.reservoir_capacity)).collect();
        let mut peak = vec![0.0f64; n_sites];
        let mut distances = DistanceHistogram::default_resolution();

        // Reused per-hour / per-epoch buffers (no per-step allocation).
        let mut delayed_row = vec![0.0f64; n_sites];
        let mut billing_row = vec![0.0f64; n_sites];
        let mut masked_demand = vec![0.0f64; states.len()];
        let mut price_hour: Option<SimHour> = None;

        // Per-epoch hoisted quantities: constant between reallocations, so
        // the per-step work below is pure adds (see module docs).
        let mut epoch_loads: Vec<f64> = vec![0.0; n_sites];
        let mut epoch_util = vec![0.0f64; n_sites];
        let mut epoch_wh = vec![0.0f64; n_sites];
        let mut epoch_cost_step = vec![0.0f64; n_sites];
        let mut epoch_hits_step = vec![0.0f64; n_sites];
        let mut epoch_overflow_step = vec![0.0f64; n_sites];
        let mut epoch_rejected_step = vec![0.0f64; n_sites];
        let mut epoch_binding = vec![false; n_sites];
        let mut epoch_samples: Vec<(f64, f64)> = Vec::new();
        // One allocation recycled across every reallocation of the shard:
        // the policy overwrites it in place via `allocate_into`.
        let mut allocation = Allocation::zeros(n_sites, states.len());

        let step_hours = STEP_SECONDS as f64 / 3600.0;
        let steps = trace.steps();
        let n_steps = steps.len();
        // Walk the trace one allocation epoch at a time. An epoch starts
        // wherever the flat engine would reallocate (step index multiple of
        // the reallocation interval, or an hour boundary) and runs to the
        // next such step, so the allocation — and every hoisted per-site
        // quantity — is constant inside it.
        let mut i = 0;
        while i < n_steps {
            let step = &steps[i];
            let hour = trace.step_hour(i);
            if price_hour != Some(hour) {
                let delayed = table.delayed_at(hour).expect("table covers the trace");
                let billing = table.billing_at(hour).expect("table covers the trace");
                for (c, &row) in hub_row.iter().enumerate() {
                    delayed_row[c] = delayed[row];
                    billing_row[c] = billing[row];
                }
                price_hour = Some(hour);
            }

            for (d, (&owner, &demand)) in
                masked_demand.iter_mut().zip(owners.iter().zip(&step.us_demand))
            {
                *d = if owner == region { demand } else { 0.0 };
            }
            let ctx =
                RoutingContext::new(&region_clusters, states, &masked_demand, &delayed_row, hour)
                    .with_constraints(&region_constraints);
            policy.allocate_into(&mut allocation, &ctx);

            // Hoist everything the flat engine recomputes per step.
            allocation.cluster_loads_into(&mut epoch_loads);
            allocation.distance_samples_into(&region_clusters, states, &mut epoch_samples);
            for c in 0..n_sites {
                let cluster = region_clusters.get(c).expect("index in range");
                let raw_utilization = cluster.utilization(epoch_loads[c]);
                let mut served = epoch_loads[c];
                epoch_overflow_step[c] = 0.0;
                epoch_rejected_step[c] = 0.0;
                if raw_utilization > 1.0 {
                    let over = epoch_loads[c] - capacities[c];
                    match config.constraints.overflow() {
                        OverflowMode::BillAtCapacity => {
                            epoch_overflow_step[c] = over * STEP_SECONDS as f64;
                        }
                        OverflowMode::Reject => {
                            epoch_rejected_step[c] = over * STEP_SECONDS as f64;
                            served = capacities[c];
                        }
                    }
                }
                let utilization = raw_utilization.min(1.0);
                epoch_util[c] = utilization;
                let watts = power_models[c].power_watts(utilization);
                epoch_wh[c] = watts * step_hours;
                epoch_cost_step[c] = energy_cost_dollars(epoch_wh[c], billing_row[c]);
                epoch_hits_step[c] = served * STEP_SECONDS as f64;
                epoch_binding[c] = match &accounted_caps {
                    Some(caps) => {
                        caps[c].is_finite()
                            && epoch_loads[c] > 0.0
                            && epoch_loads[c] >= caps[c] * (1.0 - 1e-9)
                    }
                    None => false,
                };
            }

            // The epoch's extent: up to (not including) the next step where
            // the flat engine would reallocate.
            let mut j = i + 1;
            while j < n_steps
                && j % config.reallocate_every_steps != 0
                && trace.step_hour(j) == hour
            {
                j += 1;
            }
            let epoch_len = j - i;

            // Per-step accumulation, site-major: each site's accumulators
            // stay in registers across the epoch's steps. Every per-site add
            // and push still happens once per step, in step order, so the
            // sequence of float operations each site sees is exactly the
            // flat engine's (only the interleaving *across* sites differs,
            // and sites share no state).
            for c in 0..n_sites {
                let wh_step = epoch_wh[c];
                let cost_step = epoch_cost_step[c];
                let hits_step = epoch_hits_step[c];
                let overflow_step = epoch_overflow_step[c];
                let rejected_step = epoch_rejected_step[c];
                let util = epoch_util[c];
                let load = epoch_loads[c];
                let mut wh_acc = energy_wh[c];
                let mut cost_acc = cost[c];
                let mut hits_acc = hits[c];
                let mut overflow_acc = overflow_hits[c];
                let mut rejected_acc = rejected_hits[c];
                let mut peak_acc = peak[c];
                let stats = &mut util_stats[c];
                let reservoir = &mut reservoirs[c];
                for _ in 0..epoch_len {
                    wh_acc += wh_step;
                    cost_acc += cost_step;
                    hits_acc += hits_step;
                    overflow_acc += overflow_step;
                    rejected_acc += rejected_step;
                    stats.push(util);
                    reservoir.push(load);
                    peak_acc = peak_acc.max(load);
                }
                energy_wh[c] = wh_acc;
                cost[c] = cost_acc;
                hits[c] = hits_acc;
                overflow_hits[c] = overflow_acc;
                rejected_hits[c] = rejected_acc;
                peak[c] = peak_acc;
                if epoch_binding[c] {
                    // Integer steps sum exactly, so the whole epoch lands at once.
                    binding_steps[c] += epoch_len;
                }
            }
            // Distance weights must accumulate per step (adding w once per
            // step is not float-equal to adding 12·w per hour), in the same
            // step-then-sample order as the flat engine.
            for _ in 0..epoch_len {
                for &(distance_km, weight) in &epoch_samples {
                    distances.add(distance_km, weight * STEP_SECONDS as f64);
                }
            }
            i = j;
        }

        ShardResult {
            labels,
            cost,
            energy_wh,
            hits,
            overflow_hits,
            rejected_hits,
            binding_steps,
            util_stats,
            reservoirs,
            peak,
            distances,
            policy_name: policy.name().to_string(),
            clamped_lead_hours: table.clamped_lead_hours(),
            accounted_caps,
        }
    }

    /// Fold shard results, in region index order, into one report.
    fn merge(&self, shards: Vec<ShardResult>) -> SimulationReport {
        let _merge_span = wattroute_obs::span!("hierarchy.merge");
        let n_steps = self.trace.num_steps();
        let tariff = self.config.bandwidth_tariff.as_ref();
        let policy_name = shards.first().map(|s| s.policy_name.clone()).unwrap_or_default();
        let clamped_lead_hours = shards.first().map_or(0, |s| s.clamped_lead_hours);
        debug_assert!(
            shards.iter().all(|s| s.clamped_lead_hours == clamped_lead_hours),
            "shards compiled against the same price range must clamp identically"
        );

        // Region sites are contiguous in global site order, so concatenating
        // shard outputs in region order reconstructs the global order.
        let mut clusters: Vec<ClusterReport> = Vec::with_capacity(self.topology.num_sites());
        let mut util_stats: Vec<OnlineStats> = Vec::with_capacity(self.topology.num_sites());
        let mut distances = DistanceHistogram::default_resolution();
        for shard in &shards {
            for c in 0..shard.labels.len() {
                let p95 = shard.reservoirs[c].percentile(95.0).unwrap_or(0.0);
                clusters.push(ClusterReport {
                    label: shard.labels[c].clone(),
                    cost_dollars: shard.cost[c],
                    energy_mwh: shard.energy_wh[c] / 1.0e6,
                    mean_utilization: shard.util_stats[c].mean().unwrap_or(0.0),
                    p95_hits_per_sec: p95,
                    peak_hits_per_sec: shard.peak[c],
                    total_hits: shard.hits[c],
                    overflow_hits: shard.overflow_hits[c],
                    rejected_hits: shard.rejected_hits[c],
                    bandwidth_cap_hits_per_sec: shard
                        .accounted_caps
                        .as_ref()
                        .map(|caps| caps[c])
                        .filter(|cap| cap.is_finite()),
                    bandwidth_binding_hours: shard.binding_steps[c] as f64 * STEP_SECONDS as f64
                        / 3600.0,
                    bandwidth_cost_dollars: tariff.map_or(0.0, |t| t.bill_dollars(p95, n_steps)),
                });
                util_stats.push(shard.util_stats[c]);
            }
            distances.merge(&shard.distances);
        }

        let tiers = if self.topology.is_flat_embedding() {
            // The trivial embedding IS the flat world; its report must be
            // byte-identical to the flat engine's, which carries no tiers.
            None
        } else {
            Some(self.tier_rollup(&clusters, &util_stats))
        };

        SimulationReport {
            policy: policy_name,
            steps: n_steps,
            reaction_delay_hours: self.config.reaction_delay_hours,
            bandwidth_constrained: self.config.constraints.is_bandwidth_constrained(),
            total_cost_dollars: clusters.iter().map(|c| c.cost_dollars).sum(),
            // Sum raw watt-hours, divide once — the flat engine's exact
            // arithmetic (summing per-site MWh rounds differently).
            total_energy_mwh: shards.iter().flat_map(|s| s.energy_wh.iter()).sum::<f64>() / 1.0e6,
            total_overflow_hits: clusters.iter().map(|c| c.overflow_hits).sum(),
            total_rejected_hits: clusters.iter().map(|c| c.rejected_hits).sum(),
            total_bandwidth_binding_hours: clusters.iter().map(|c| c.bandwidth_binding_hours).sum(),
            total_bandwidth_cost_dollars: clusters.iter().map(|c| c.bandwidth_cost_dollars).sum(),
            delay_clamped_hours: clamped_lead_hours,
            clusters,
            mean_distance_km: distances.mean_km().unwrap_or(0.0),
            p99_distance_km: distances.percentile_km(99.0).unwrap_or(0.0),
            distances,
            tiers,
        }
    }

    /// Sum the per-site reports over the tree's contiguous ranges, folding
    /// the sites' utilization accumulators with [`OnlineStats::merge`].
    fn tier_rollup(&self, sites: &[ClusterReport], util_stats: &[OnlineStats]) -> TierRollup {
        let topology = self.topology;
        let node = |label: &str, (a, b): (usize, usize), cap: f64| {
            let mut merged = OnlineStats::new();
            for stats in &util_stats[a..b] {
                merged.merge(stats);
            }
            TierNodeReport {
                label: label.to_string(),
                sites: b - a,
                cost_dollars: sites[a..b].iter().map(|c| c.cost_dollars).sum(),
                energy_mwh: sites[a..b].iter().map(|c| c.energy_mwh).sum(),
                total_hits: sites[a..b].iter().map(|c| c.total_hits).sum(),
                overflow_hits: sites[a..b].iter().map(|c| c.overflow_hits).sum(),
                rejected_hits: sites[a..b].iter().map(|c| c.rejected_hits).sum(),
                mean_utilization: merged.mean().unwrap_or(0.0),
                cap_hits_per_sec: cap.is_finite().then_some(cap),
            }
        };
        TierRollup {
            metros: (0..topology.num_metros())
                .map(|m| {
                    node(
                        &topology.metro_labels()[m],
                        topology.metro_sites(m),
                        topology.metro_cap_hits_per_sec(m),
                    )
                })
                .collect(),
            regions: (0..topology.num_regions())
                .map(|r| {
                    node(
                        &topology.region_labels()[r],
                        topology.region_sites(r),
                        topology.region_cap_hits_per_sec(r),
                    )
                })
                .collect(),
        }
    }
}

/// Flatten one region's contiguous site range into a deployable
/// [`ClusterSet`] (global site order preserved within the range).
fn site_clusters_range(topology: &Topology, s0: usize, s1: usize) -> ClusterSet {
    let all = site_clusters(topology);
    ClusterSet::with_shared_hubs(all.clusters()[s0..s1].to_vec())
}

/// The region's slice of a global constraint set: positional vectors cut to
/// the region's site range, tier caps localised to the region's metros and
/// the region's own cap, overflow mode carried over.
fn slice_constraints(global: &ConstraintSet, topology: &Topology, region: usize) -> ConstraintSet {
    let (s0, s1) = topology.region_sites(region);
    let mut set = ConstraintSet::unconstrained().with_overflow(global.overflow());
    if let Some(caps) = global.bandwidth_caps() {
        set = set.with_bandwidth_caps(caps[s0..s1].to_vec());
    }
    if let Some(ceilings) = global.capacity_ceilings() {
        set = set.with_capacity_ceilings(ceilings[s0..s1].to_vec());
    }
    if global.tier_caps().is_some() {
        let (m0, m1) = topology.region_metros(region);
        let site_metro: Vec<usize> = (s0..s1).map(|s| topology.site_metro(s) - m0).collect();
        let site_region = vec![0usize; s1 - s0];
        let metro_caps: Vec<f64> = (m0..m1).map(|m| topology.metro_cap_hits_per_sec(m)).collect();
        let region_caps = vec![topology.region_cap_hits_per_sec(region)];
        set = set.with_tier_caps(TierCaps::new(site_metro, site_region, metro_caps, region_caps));
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::RunOptions;
    use crate::simulation::Simulation;
    use wattroute_market::generator::PriceGenerator;
    use wattroute_market::model::MarketModel;
    use wattroute_market::time::HourRange;
    use wattroute_routing::price_conscious::PriceConsciousPolicy;
    use wattroute_workload::hierarchy::single_region_of;
    use wattroute_workload::SyntheticWorkloadConfig;

    fn short_range(hours: u64) -> HourRange {
        let start = SimHour::from_date(2008, 12, 19);
        HourRange::new(start, start.plus_hours(hours))
    }

    fn pc_factory() -> Box<dyn RoutingPolicy> {
        Box::new(PriceConsciousPolicy::with_distance_threshold(1500.0))
    }

    #[test]
    fn trivial_embedding_matches_flat_engine_bit_for_bit() {
        let clusters = ClusterSet::akamai_like_nine();
        let topology = single_region_of(&clusters);
        let range = short_range(48);
        let trace = SyntheticWorkloadConfig::default().generate(range);
        let prices = PriceGenerator::nine_cluster_default(42).realtime_hourly(range);
        let config = SimulationConfig::default();

        let flat = Simulation::new(&clusters, &trace, &prices, config.clone())
            .execute(&mut *pc_factory(), RunOptions::new());
        let replay = HierarchicalReplay::new(&topology, &trace, &prices, config);
        let tree = replay.run(&pc_factory);
        assert_eq!(tree, flat, "trivial embedding must replay bit-identical");
        assert_eq!(tree.to_json(), flat.to_json(), "JSON must match byte for byte");
        assert!(tree.tiers.is_none());
    }

    #[test]
    fn sharded_matches_sequential_on_a_synthetic_tree() {
        let topology = Topology::synthetic(7, 60).with_tier_slack(0.9);
        let range = short_range(36);
        let trace = SyntheticWorkloadConfig::default().generate(range);
        let prices = PriceGenerator::new(MarketModel::calibrated(), 9).realtime_hourly(range);
        let replay =
            HierarchicalReplay::new(&topology, &trace, &prices, SimulationConfig::default());
        let sequential = replay.run(&pc_factory);
        let sharded = replay.run_sharded(&pc_factory);
        assert_eq!(sequential, sharded);
        let tiers = sequential.tiers.as_ref().expect("synthetic tree reports tiers");
        assert_eq!(tiers.metros.len(), 29);
        assert_eq!(tiers.regions.len(), 6);
    }

    #[test]
    fn tier_rollup_conserves_cost_energy_and_hits() {
        let topology = Topology::synthetic(3, 45);
        let range = short_range(24);
        let trace = SyntheticWorkloadConfig::default().generate(range);
        let prices = PriceGenerator::new(MarketModel::calibrated(), 4).realtime_hourly(range);
        let replay =
            HierarchicalReplay::new(&topology, &trace, &prices, SimulationConfig::default());
        let report = replay.run(&pc_factory);
        let tiers = report.tiers.as_ref().expect("tiers present");
        let site_cost: f64 = report.clusters.iter().map(|c| c.cost_dollars).sum();
        let metro_cost: f64 = tiers.metros.iter().map(|m| m.cost_dollars).sum();
        let region_cost: f64 = tiers.regions.iter().map(|r| r.cost_dollars).sum();
        assert!((metro_cost - site_cost).abs() / site_cost.max(1.0) < 1e-9);
        assert!((region_cost - site_cost).abs() / site_cost.max(1.0) < 1e-9);
        let site_hits: f64 = report.clusters.iter().map(|c| c.total_hits).sum();
        let region_hits: f64 = tiers.regions.iter().map(|r| r.total_hits).sum();
        assert!((region_hits - site_hits).abs() / site_hits.max(1.0) < 1e-9);
        assert_eq!(tiers.regions.iter().map(|r| r.sites).sum::<usize>(), 45);
    }
}
