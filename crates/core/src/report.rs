//! Simulation results: costs, distances, per-cluster breakdowns.

use crate::json::{self, JsonValue};
use serde::{Deserialize, Serialize};
use wattroute_workload::ClusterSet;

/// An error produced while decoding a report from JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportDecodeError(String);

impl ReportDecodeError {
    /// Build an error from a plain message (used by sibling decoders such
    /// as the sweep report).
    pub(crate) fn new(message: impl Into<String>) -> Self {
        ReportDecodeError(message.into())
    }
}

impl std::fmt::Display for ReportDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "report decode error: {}", self.0)
    }
}

impl std::error::Error for ReportDecodeError {}

impl From<json::JsonError> for ReportDecodeError {
    fn from(e: json::JsonError) -> Self {
        ReportDecodeError(e.to_string())
    }
}

fn field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, ReportDecodeError> {
    v.get(key).ok_or_else(|| ReportDecodeError(format!("missing field '{key}'")))
}

fn f64_field(v: &JsonValue, key: &str) -> Result<f64, ReportDecodeError> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| ReportDecodeError(format!("field '{key}' is not a number")))
}

fn f64_vec_field(v: &JsonValue, key: &str) -> Result<Vec<f64>, ReportDecodeError> {
    field(v, key)?
        .as_array()
        .ok_or_else(|| ReportDecodeError(format!("field '{key}' is not an array")))?
        .iter()
        .map(|x| {
            x.as_f64()
                .ok_or_else(|| ReportDecodeError(format!("field '{key}' has a non-number entry")))
        })
        .collect()
}

fn str_field(v: &JsonValue, key: &str) -> Result<String, ReportDecodeError> {
    Ok(field(v, key)?
        .as_str()
        .ok_or_else(|| ReportDecodeError(format!("field '{key}' is not a string")))?
        .to_string())
}

fn bool_field(v: &JsonValue, key: &str) -> Result<bool, ReportDecodeError> {
    field(v, key)?
        .as_bool()
        .ok_or_else(|| ReportDecodeError(format!("field '{key}' is not a boolean")))
}

/// A demand-weighted histogram over client–server distances, used to report
/// mean and tail (99th percentile) distances without storing every sample
/// (Figure 17 plots both).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistanceHistogram {
    bin_km: f64,
    weights: Vec<f64>,
    total_weight: f64,
    weighted_sum: f64,
}

impl DistanceHistogram {
    /// Create a histogram with `bins` bins of `bin_km` kilometres each.
    pub fn new(bin_km: f64, bins: usize) -> Self {
        assert!(bin_km > 0.0 && bins > 0);
        Self { bin_km, weights: vec![0.0; bins], total_weight: 0.0, weighted_sum: 0.0 }
    }

    /// Default resolution: 25 km bins out to 6000 km.
    pub fn default_resolution() -> Self {
        Self::new(25.0, 240)
    }

    /// Record `weight` demand served at `distance_km`.
    pub fn add(&mut self, distance_km: f64, weight: f64) {
        if !(distance_km.is_finite() && weight.is_finite()) || weight <= 0.0 {
            return;
        }
        let idx = ((distance_km / self.bin_km) as usize).min(self.weights.len() - 1);
        self.weights[idx] += weight;
        self.total_weight += weight;
        self.weighted_sum += distance_km * weight;
    }

    /// Total demand-weight recorded.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Demand-weighted mean distance, or `None` if nothing was recorded.
    pub fn mean_km(&self) -> Option<f64> {
        (self.total_weight > 0.0).then(|| self.weighted_sum / self.total_weight)
    }

    /// Demand-weighted percentile (0-100) of the distance distribution,
    /// resolved to bin granularity.
    pub fn percentile_km(&self, p: f64) -> Option<f64> {
        if self.total_weight <= 0.0 {
            return None;
        }
        let target = self.total_weight * (p / 100.0).clamp(0.0, 1.0);
        let mut acc = 0.0;
        for (i, w) in self.weights.iter().enumerate() {
            acc += w;
            if acc >= target {
                return Some((i as f64 + 1.0) * self.bin_km);
            }
        }
        Some(self.weights.len() as f64 * self.bin_km)
    }

    /// Encode as a JSON value.
    pub fn to_json_value(&self) -> JsonValue {
        json::object([
            ("bin_km", JsonValue::Number(self.bin_km)),
            ("weights", json::number_array(&self.weights)),
            ("total_weight", JsonValue::Number(self.total_weight)),
            ("weighted_sum", JsonValue::Number(self.weighted_sum)),
        ])
    }

    /// Decode from a JSON value produced by [`Self::to_json_value`].
    pub fn from_json_value(v: &JsonValue) -> Result<Self, ReportDecodeError> {
        let bin_km = f64_field(v, "bin_km")?;
        let weights = f64_vec_field(v, "weights")?;
        let geometry_ok = bin_km.is_finite() && bin_km > 0.0 && !weights.is_empty();
        if !geometry_ok {
            return Err(ReportDecodeError("histogram geometry is invalid".to_string()));
        }
        Ok(Self {
            bin_km,
            weights,
            total_weight: f64_field(v, "total_weight")?,
            weighted_sum: f64_field(v, "weighted_sum")?,
        })
    }

    /// Merge another histogram with the same geometry.
    pub fn merge(&mut self, other: &DistanceHistogram) {
        assert_eq!(self.bin_km, other.bin_km);
        assert_eq!(self.weights.len(), other.weights.len());
        for (a, b) in self.weights.iter_mut().zip(&other.weights) {
            *a += b;
        }
        self.total_weight += other.total_weight;
        self.weighted_sum += other.weighted_sum;
    }
}

/// Cost and load accounting for one cluster over a whole simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Cluster label (e.g. `NY`).
    pub label: String,
    /// Total electricity cost in dollars.
    pub cost_dollars: f64,
    /// Total energy in MWh.
    pub energy_mwh: f64,
    /// Mean utilization over the run (0..1).
    pub mean_utilization: f64,
    /// 95th percentile of the cluster's five-minute hit rate (hits/second).
    pub p95_hits_per_sec: f64,
    /// Peak five-minute hit rate (hits/second).
    pub peak_hits_per_sec: f64,
    /// Total hits served over the run.
    pub total_hits: f64,
    /// Hits assigned beyond the cluster's capacity under
    /// [`OverflowMode::BillAtCapacity`](wattroute_routing::constraints::OverflowMode),
    /// summed over all steps where the cluster was over-subscribed. The
    /// engine bills such demand as if served at capacity (the energy model
    /// saturates), so a nonzero value means the cost figures understate
    /// what serving everything would really take. Always zero under
    /// `OverflowMode::Reject`, where the same demand lands in
    /// [`Self::rejected_hits`] instead.
    pub overflow_hits: f64,
    /// Hits assigned beyond the cluster's capacity under
    /// [`OverflowMode::Reject`](wattroute_routing::constraints::OverflowMode): turned
    /// away rather than billed at capacity, and excluded from
    /// [`Self::total_hits`]. Always zero under the default
    /// `OverflowMode::BillAtCapacity`. The JSON encoding omits the field
    /// when it is zero, so default-mode reports are byte-identical to
    /// pre-rejection reports.
    pub rejected_hits: f64,
    /// The 95/5 bandwidth cap (hits/second) in force for this cluster
    /// during the run, if one was — the calibrated ceiling the router was
    /// held to. Populated only when the run carries a
    /// [`BandwidthTariff`](crate::constraints::BandwidthTariff) (95/5
    /// accounting is opt-in); omitted from JSON when absent so
    /// pre-accounting reports — including cap-constrained ones — are
    /// byte-identical.
    pub bandwidth_cap_hits_per_sec: Option<f64>,
    /// Hours this cluster spent *at* its 95/5 bandwidth cap (load within a
    /// relative 1e-9 of the ceiling, or above it through spill) — the
    /// hours where the constraint actually shaped routing. Counted only
    /// when the run carries a
    /// [`BandwidthTariff`](crate::constraints::BandwidthTariff); the JSON
    /// encoding omits zero values.
    pub bandwidth_binding_hours: f64,
    /// This cluster's 95/5 bandwidth bill in dollars, priced on its
    /// observed [`Self::p95_hits_per_sec`] under the run's
    /// [`BandwidthTariff`](crate::constraints::BandwidthTariff), prorated
    /// by run length. Zero when the run had no tariff; the JSON encoding
    /// omits zero values.
    pub bandwidth_cost_dollars: f64,
}

impl ClusterReport {
    /// Encode as a JSON value. `rejected_hits` is emitted only when
    /// nonzero, so default-mode reports serialize exactly as they did
    /// before rejection accounting existed (golden files stay valid).
    pub fn to_json_value(&self) -> JsonValue {
        let mut fields = vec![
            ("label", JsonValue::String(self.label.clone())),
            ("cost_dollars", JsonValue::Number(self.cost_dollars)),
            ("energy_mwh", JsonValue::Number(self.energy_mwh)),
            ("mean_utilization", JsonValue::Number(self.mean_utilization)),
            ("p95_hits_per_sec", JsonValue::Number(self.p95_hits_per_sec)),
            ("peak_hits_per_sec", JsonValue::Number(self.peak_hits_per_sec)),
            ("total_hits", JsonValue::Number(self.total_hits)),
            ("overflow_hits", JsonValue::Number(self.overflow_hits)),
        ];
        if self.rejected_hits != 0.0 {
            fields.push(("rejected_hits", JsonValue::Number(self.rejected_hits)));
        }
        if let Some(cap) = self.bandwidth_cap_hits_per_sec {
            fields.push(("bandwidth_cap_hits_per_sec", JsonValue::Number(cap)));
        }
        if self.bandwidth_binding_hours != 0.0 {
            fields
                .push(("bandwidth_binding_hours", JsonValue::Number(self.bandwidth_binding_hours)));
        }
        if self.bandwidth_cost_dollars != 0.0 {
            fields.push(("bandwidth_cost_dollars", JsonValue::Number(self.bandwidth_cost_dollars)));
        }
        json::object_iter(fields)
    }

    /// Decode from a JSON value produced by [`Self::to_json_value`].
    pub fn from_json_value(v: &JsonValue) -> Result<Self, ReportDecodeError> {
        Ok(Self {
            label: str_field(v, "label")?,
            cost_dollars: f64_field(v, "cost_dollars")?,
            energy_mwh: f64_field(v, "energy_mwh")?,
            mean_utilization: f64_field(v, "mean_utilization")?,
            p95_hits_per_sec: f64_field(v, "p95_hits_per_sec")?,
            peak_hits_per_sec: f64_field(v, "peak_hits_per_sec")?,
            total_hits: f64_field(v, "total_hits")?,
            overflow_hits: f64_field(v, "overflow_hits")?,
            // Absent in pre-rejection reports and in default-mode reports.
            rejected_hits: v.get("rejected_hits").and_then(JsonValue::as_f64).unwrap_or(0.0),
            // All absent in pre-constraint (and unconstrained) reports.
            bandwidth_cap_hits_per_sec: v
                .get("bandwidth_cap_hits_per_sec")
                .and_then(JsonValue::as_f64),
            bandwidth_binding_hours: v
                .get("bandwidth_binding_hours")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0),
            bandwidth_cost_dollars: v
                .get("bandwidth_cost_dollars")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0),
        })
    }
}

/// Additive accounting for one tier node (a metro or a region): the sums
/// of its sites' costs, energy, and hit counts. Only additive quantities
/// appear — a tier's 95th percentile is not the sum of its sites' 95th
/// percentiles, so percentile-like fields stay per-cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierNodeReport {
    /// Node label (e.g. a metro's hub code or a region's RTO abbreviation).
    pub label: String,
    /// Number of sites under this node.
    pub sites: usize,
    /// Total electricity cost in dollars, summed over the node's sites.
    pub cost_dollars: f64,
    /// Total energy in MWh, summed over the node's sites.
    pub energy_mwh: f64,
    /// Total hits served, summed over the node's sites.
    pub total_hits: f64,
    /// Overflow hits, summed over the node's sites.
    pub overflow_hits: f64,
    /// Rejected hits, summed over the node's sites.
    pub rejected_hits: f64,
    /// Mean utilization over the node's (site × step) observations, folded
    /// from the sites' online accumulators.
    pub mean_utilization: f64,
    /// The aggregate tier bandwidth cap in force (hits/second), when the
    /// topology carried a finite one.
    pub cap_hits_per_sec: Option<f64>,
}

impl TierNodeReport {
    /// Encode as a JSON value. Like [`ClusterReport::to_json_value`],
    /// zero `rejected_hits` and absent caps are omitted.
    pub fn to_json_value(&self) -> JsonValue {
        let mut fields = vec![
            ("label", JsonValue::String(self.label.clone())),
            ("sites", JsonValue::Number(self.sites as f64)),
            ("cost_dollars", JsonValue::Number(self.cost_dollars)),
            ("energy_mwh", JsonValue::Number(self.energy_mwh)),
            ("total_hits", JsonValue::Number(self.total_hits)),
            ("overflow_hits", JsonValue::Number(self.overflow_hits)),
            ("mean_utilization", JsonValue::Number(self.mean_utilization)),
        ];
        if self.rejected_hits != 0.0 {
            fields.push(("rejected_hits", JsonValue::Number(self.rejected_hits)));
        }
        if let Some(cap) = self.cap_hits_per_sec {
            fields.push(("cap_hits_per_sec", JsonValue::Number(cap)));
        }
        json::object_iter(fields)
    }

    /// Decode from a JSON value produced by [`Self::to_json_value`].
    pub fn from_json_value(v: &JsonValue) -> Result<Self, ReportDecodeError> {
        Ok(Self {
            label: str_field(v, "label")?,
            sites: f64_field(v, "sites")? as usize,
            cost_dollars: f64_field(v, "cost_dollars")?,
            energy_mwh: f64_field(v, "energy_mwh")?,
            total_hits: f64_field(v, "total_hits")?,
            overflow_hits: f64_field(v, "overflow_hits")?,
            mean_utilization: f64_field(v, "mean_utilization")?,
            rejected_hits: v.get("rejected_hits").and_then(JsonValue::as_f64).unwrap_or(0.0),
            cap_hits_per_sec: v.get("cap_hits_per_sec").and_then(JsonValue::as_f64),
        })
    }
}

/// Per-tier rollups of a hierarchical run: metro and region accounting, in
/// tree index order. Flat runs carry `None` in
/// [`SimulationReport::tiers`], and the JSON encoding omits the field, so
/// flat reports — including trivial single-region embeddings — are
/// byte-identical to pre-hierarchy reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierRollup {
    /// Per-metro accounting, in metro index order.
    pub metros: Vec<TierNodeReport>,
    /// Per-region accounting, in region index order.
    pub regions: Vec<TierNodeReport>,
}

impl TierRollup {
    /// Encode as a JSON value.
    pub fn to_json_value(&self) -> JsonValue {
        json::object([
            (
                "metros",
                JsonValue::Array(self.metros.iter().map(TierNodeReport::to_json_value).collect()),
            ),
            (
                "regions",
                JsonValue::Array(self.regions.iter().map(TierNodeReport::to_json_value).collect()),
            ),
        ])
    }

    /// Decode from a JSON value produced by [`Self::to_json_value`].
    pub fn from_json_value(v: &JsonValue) -> Result<Self, ReportDecodeError> {
        let nodes = |key: &str| -> Result<Vec<TierNodeReport>, ReportDecodeError> {
            field(v, key)?
                .as_array()
                .ok_or_else(|| ReportDecodeError(format!("field '{key}' is not an array")))?
                .iter()
                .map(TierNodeReport::from_json_value)
                .collect()
        };
        Ok(Self { metros: nodes("metros")?, regions: nodes("regions")? })
    }
}

/// The result of simulating one routing policy over one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Name of the routing policy simulated.
    pub policy: String,
    /// Number of five-minute steps simulated.
    pub steps: usize,
    /// Reaction delay (hours) between market prices and routing decisions.
    pub reaction_delay_hours: u64,
    /// Whether 95/5 bandwidth caps were enforced.
    pub bandwidth_constrained: bool,
    /// Total electricity cost in dollars.
    pub total_cost_dollars: f64,
    /// Total energy in MWh.
    pub total_energy_mwh: f64,
    /// Total hits assigned beyond cluster capacity across the whole run
    /// (the sum of every cluster's [`ClusterReport::overflow_hits`]).
    /// Nonzero means the deployment was over-subscribed at some point and
    /// the cost totals silently assume capacity-saturated service.
    pub total_overflow_hits: f64,
    /// Total hits turned away across the whole run (the sum of every
    /// cluster's [`ClusterReport::rejected_hits`]). Nonzero only under
    /// [`OverflowMode::Reject`](wattroute_routing::constraints::OverflowMode); like the
    /// per-cluster field, the JSON encoding omits it when zero so
    /// default-mode reports are unchanged on disk.
    pub total_rejected_hits: f64,
    /// Total hours any cluster spent at its 95/5 bandwidth cap (the sum of
    /// every cluster's [`ClusterReport::bandwidth_binding_hours`]). Zero on
    /// unconstrained runs; omitted from JSON when zero.
    pub total_bandwidth_binding_hours: f64,
    /// Total 95/5 bandwidth bill in dollars (the sum of every cluster's
    /// [`ClusterReport::bandwidth_cost_dollars`]). Zero when the run had no
    /// [`BandwidthTariff`](crate::constraints::BandwidthTariff); omitted
    /// from JSON when zero.
    pub total_bandwidth_cost_dollars: f64,
    /// Hours at the start of the run whose *delayed* (router-visible) price
    /// fell before the price series began and was clamped to the first
    /// sample. Runs whose price data start exactly at the trace start see
    /// `min(reaction_delay_hours, run hours)` here; supply series extending
    /// `reaction_delay_hours` earlier for faithful routing from step one.
    pub delay_clamped_hours: u64,
    /// Per-cluster breakdown, in cluster order.
    pub clusters: Vec<ClusterReport>,
    /// Demand-weighted mean client–server distance in km.
    pub mean_distance_km: f64,
    /// Demand-weighted 99th-percentile client–server distance in km.
    pub p99_distance_km: f64,
    /// The distance histogram itself (for further analysis).
    pub distances: DistanceHistogram,
    /// Per-tier rollups when the run was hierarchical (a real tree with
    /// metros holding several sites, or tier caps in force). `None` on flat
    /// runs and on trivial single-region embeddings — those *are* the flat
    /// world — and omitted from JSON when `None`, so existing goldens stay
    /// byte-identical.
    pub tiers: Option<TierRollup>,
}

impl SimulationReport {
    /// Serialize to a compact JSON string.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }

    /// Encode as a JSON value. Like [`ClusterReport::to_json_value`], the
    /// `total_rejected_hits` field is emitted only when nonzero.
    pub fn to_json_value(&self) -> JsonValue {
        let mut fields = vec![
            ("policy", JsonValue::String(self.policy.clone())),
            ("steps", JsonValue::Number(self.steps as f64)),
            ("reaction_delay_hours", JsonValue::Number(self.reaction_delay_hours as f64)),
            ("bandwidth_constrained", JsonValue::Bool(self.bandwidth_constrained)),
            ("total_cost_dollars", JsonValue::Number(self.total_cost_dollars)),
            ("total_energy_mwh", JsonValue::Number(self.total_energy_mwh)),
            ("total_overflow_hits", JsonValue::Number(self.total_overflow_hits)),
            ("delay_clamped_hours", JsonValue::Number(self.delay_clamped_hours as f64)),
            (
                "clusters",
                JsonValue::Array(self.clusters.iter().map(ClusterReport::to_json_value).collect()),
            ),
            ("mean_distance_km", JsonValue::Number(self.mean_distance_km)),
            ("p99_distance_km", JsonValue::Number(self.p99_distance_km)),
            ("distances", self.distances.to_json_value()),
        ];
        if self.total_rejected_hits != 0.0 {
            fields.push(("total_rejected_hits", JsonValue::Number(self.total_rejected_hits)));
        }
        if self.total_bandwidth_binding_hours != 0.0 {
            fields.push((
                "total_bandwidth_binding_hours",
                JsonValue::Number(self.total_bandwidth_binding_hours),
            ));
        }
        if self.total_bandwidth_cost_dollars != 0.0 {
            fields.push((
                "total_bandwidth_cost_dollars",
                JsonValue::Number(self.total_bandwidth_cost_dollars),
            ));
        }
        if let Some(tiers) = &self.tiers {
            fields.push(("tiers", tiers.to_json_value()));
        }
        json::object_iter(fields)
    }

    /// Deserialize from JSON text produced by [`Self::to_json`].
    pub fn from_json(text: &str) -> Result<Self, ReportDecodeError> {
        Self::from_json_value(&JsonValue::parse(text)?)
    }

    /// Decode from a JSON value produced by [`Self::to_json_value`].
    pub fn from_json_value(v: &JsonValue) -> Result<Self, ReportDecodeError> {
        let clusters = field(v, "clusters")?
            .as_array()
            .ok_or_else(|| ReportDecodeError("field 'clusters' is not an array".to_string()))?
            .iter()
            .map(ClusterReport::from_json_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            policy: str_field(v, "policy")?,
            steps: f64_field(v, "steps")? as usize,
            reaction_delay_hours: f64_field(v, "reaction_delay_hours")? as u64,
            bandwidth_constrained: bool_field(v, "bandwidth_constrained")?,
            total_cost_dollars: f64_field(v, "total_cost_dollars")?,
            total_energy_mwh: f64_field(v, "total_energy_mwh")?,
            total_overflow_hits: f64_field(v, "total_overflow_hits")?,
            total_rejected_hits: v
                .get("total_rejected_hits")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0),
            total_bandwidth_binding_hours: v
                .get("total_bandwidth_binding_hours")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0),
            total_bandwidth_cost_dollars: v
                .get("total_bandwidth_cost_dollars")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0),
            delay_clamped_hours: f64_field(v, "delay_clamped_hours")? as u64,
            clusters,
            mean_distance_km: f64_field(v, "mean_distance_km")?,
            p99_distance_km: f64_field(v, "p99_distance_km")?,
            distances: DistanceHistogram::from_json_value(field(v, "distances")?)?,
            tiers: v.get("tiers").map(TierRollup::from_json_value).transpose()?,
        })
    }

    /// This report's cost normalised to a baseline report's cost
    /// (Figures 16 and 18 plot exactly this quantity).
    pub fn normalized_cost_vs(&self, baseline: &SimulationReport) -> f64 {
        assert!(baseline.total_cost_dollars > 0.0, "baseline cost must be positive");
        self.total_cost_dollars / baseline.total_cost_dollars
    }

    /// Percentage savings relative to a baseline (positive = cheaper than
    /// the baseline).
    pub fn savings_percent_vs(&self, baseline: &SimulationReport) -> f64 {
        (1.0 - self.normalized_cost_vs(baseline)) * 100.0
    }

    /// Per-cluster percentage change in cost relative to the same cluster in
    /// a baseline report (Figure 19). Positive = this policy spends more at
    /// that cluster.
    pub fn per_cluster_cost_change_vs(&self, baseline: &SimulationReport) -> Vec<(String, f64)> {
        self.clusters
            .iter()
            .zip(&baseline.clusters)
            .map(|(mine, base)| {
                assert_eq!(mine.label, base.label, "cluster order mismatch");
                let change = if base.cost_dollars > 0.0 {
                    (mine.cost_dollars - base.cost_dollars) / base.cost_dollars * 100.0
                } else {
                    0.0
                };
                (mine.label.clone(), change)
            })
            .collect()
    }

    /// Whether every cluster's 95th percentile stayed at or below the given
    /// per-cluster ceilings (with a relative tolerance).
    pub fn respects_p95_caps(&self, caps: &[f64], tolerance: f64) -> bool {
        self.clusters.len() == caps.len()
            && self
                .clusters
                .iter()
                .zip(caps)
                .all(|(c, cap)| c.p95_hits_per_sec <= cap * (1.0 + tolerance))
    }

    /// Labels of the clusters, for convenience when printing tables.
    pub fn cluster_labels(&self) -> Vec<&str> {
        self.clusters.iter().map(|c| c.label.as_str()).collect()
    }
}

/// Side-by-side comparison of several policies on the same scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyComparison {
    /// The baseline every other report is normalised against.
    pub baseline: SimulationReport,
    /// The alternative policies.
    pub alternatives: Vec<SimulationReport>,
}

impl PolicyComparison {
    /// `(policy name, normalised cost, savings %)` rows, baseline first.
    pub fn summary_rows(&self) -> Vec<(String, f64, f64)> {
        let mut rows = vec![(self.baseline.policy.clone(), 1.0, 0.0)];
        for alt in &self.alternatives {
            rows.push((
                alt.policy.clone(),
                alt.normalized_cost_vs(&self.baseline),
                alt.savings_percent_vs(&self.baseline),
            ));
        }
        rows
    }

    /// The best (largest) savings among the alternatives, if any.
    pub fn best_savings_percent(&self) -> Option<f64> {
        self.alternatives
            .iter()
            .map(|a| a.savings_percent_vs(&self.baseline))
            .max_by(|a, b| a.partial_cmp(b).expect("finite savings"))
    }
}

/// Build the per-cluster labels for a deployment (kept here so reports and
/// engine agree on ordering).
pub fn cluster_labels(clusters: &ClusterSet) -> Vec<String> {
    clusters.labels().into_iter().map(|s| s.to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_report(policy: &str, costs: &[f64]) -> SimulationReport {
        let clusters = costs
            .iter()
            .enumerate()
            .map(|(i, &c)| ClusterReport {
                label: format!("C{i}"),
                cost_dollars: c,
                energy_mwh: c / 60.0,
                mean_utilization: 0.3,
                p95_hits_per_sec: 1000.0,
                peak_hits_per_sec: 1200.0,
                total_hits: 1.0e9,
                overflow_hits: 0.0,
                rejected_hits: 0.0,
                bandwidth_cap_hits_per_sec: None,
                bandwidth_binding_hours: 0.0,
                bandwidth_cost_dollars: 0.0,
            })
            .collect::<Vec<_>>();
        SimulationReport {
            policy: policy.to_string(),
            steps: 100,
            reaction_delay_hours: 1,
            bandwidth_constrained: false,
            total_cost_dollars: costs.iter().sum(),
            total_energy_mwh: costs.iter().sum::<f64>() / 60.0,
            total_overflow_hits: 0.0,
            total_rejected_hits: 0.0,
            total_bandwidth_binding_hours: 0.0,
            total_bandwidth_cost_dollars: 0.0,
            delay_clamped_hours: 1,
            clusters,
            mean_distance_km: 500.0,
            p99_distance_km: 900.0,
            distances: DistanceHistogram::default_resolution(),
            tiers: None,
        }
    }

    #[test]
    fn normalisation_and_savings() {
        let baseline = dummy_report("base", &[100.0, 100.0]);
        let cheaper = dummy_report("opt", &[90.0, 70.0]);
        assert!((cheaper.normalized_cost_vs(&baseline) - 0.8).abs() < 1e-12);
        assert!((cheaper.savings_percent_vs(&baseline) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn per_cluster_changes() {
        let baseline = dummy_report("base", &[100.0, 100.0]);
        let alt = dummy_report("opt", &[50.0, 120.0]);
        let changes = alt.per_cluster_cost_change_vs(&baseline);
        assert_eq!(changes.len(), 2);
        assert!((changes[0].1 + 50.0).abs() < 1e-9);
        assert!((changes[1].1 - 20.0).abs() < 1e-9);
    }

    #[test]
    fn p95_cap_check() {
        let report = dummy_report("x", &[10.0]);
        assert!(report.respects_p95_caps(&[1000.0], 0.0));
        assert!(report.respects_p95_caps(&[990.0], 0.02));
        assert!(!report.respects_p95_caps(&[900.0], 0.01));
        assert!(!report.respects_p95_caps(&[1000.0, 1000.0], 0.0));
    }

    #[test]
    fn comparison_rows() {
        let cmp = PolicyComparison {
            baseline: dummy_report("base", &[100.0]),
            alternatives: vec![dummy_report("a", &[80.0]), dummy_report("b", &[95.0])],
        };
        let rows = cmp.summary_rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].0, "base");
        assert!((rows[1].2 - 20.0).abs() < 1e-9);
        assert!((cmp.best_savings_percent().unwrap() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn rejected_hits_are_omitted_when_zero_and_round_trip_when_not() {
        // Zero rejections (the default mode): the JSON must not mention the
        // field at all, so pre-rejection goldens stay byte-identical.
        let clean = dummy_report("x", &[10.0, 20.0]);
        let clean_json = clean.to_json();
        assert!(!clean_json.contains("rejected"), "zero rejections must not appear in JSON");
        assert_eq!(SimulationReport::from_json(&clean_json).unwrap(), clean);

        // Nonzero rejections survive a round trip.
        let mut rejecting = dummy_report("y", &[10.0, 20.0]);
        rejecting.clusters[1].rejected_hits = 5.0e6;
        rejecting.total_rejected_hits = 5.0e6;
        let json = rejecting.to_json();
        assert!(json.contains("\"rejected_hits\":5000000"));
        assert!(json.contains("\"total_rejected_hits\":5000000"));
        let back = SimulationReport::from_json(&json).unwrap();
        assert_eq!(back, rejecting);
        assert_eq!(back.clusters[0].rejected_hits, 0.0);
    }

    #[test]
    fn bandwidth_fields_are_omitted_when_absent_and_round_trip_when_not() {
        // Unconstrained, untariffed report: no bandwidth field may appear,
        // so pre-constraint goldens stay byte-identical.
        let clean = dummy_report("x", &[10.0, 20.0]);
        let clean_json = clean.to_json();
        assert!(!clean_json.contains("bandwidth_cap"), "no cap field on unconstrained reports");
        assert!(!clean_json.contains("bandwidth_binding"), "no binding field");
        assert!(!clean_json.contains("bandwidth_cost"), "no cost field");
        assert_eq!(SimulationReport::from_json(&clean_json).unwrap(), clean);

        // A constrained + tariffed report round-trips every new field.
        let mut constrained = dummy_report("y", &[10.0, 20.0]);
        constrained.bandwidth_constrained = true;
        constrained.clusters[0].bandwidth_cap_hits_per_sec = Some(1100.0);
        constrained.clusters[0].bandwidth_binding_hours = 7.25;
        constrained.clusters[0].bandwidth_cost_dollars = 42.5;
        constrained.clusters[1].bandwidth_cap_hits_per_sec = Some(900.0);
        constrained.total_bandwidth_binding_hours = 7.25;
        constrained.total_bandwidth_cost_dollars = 42.5;
        let json = constrained.to_json();
        assert!(json.contains("\"bandwidth_cap_hits_per_sec\":1100"));
        assert!(json.contains("\"total_bandwidth_cost_dollars\":42.5"));
        let back = SimulationReport::from_json(&json).unwrap();
        assert_eq!(back, constrained);
        assert_eq!(back.clusters[1].bandwidth_binding_hours, 0.0);
    }

    #[test]
    fn legacy_json_without_bandwidth_fields_still_parses() {
        // A hand-built pre-constraint report body (no bandwidth_* or
        // rejected fields anywhere) must decode, defaulting the new fields.
        let legacy = r#"{"policy":"legacy","steps":2,"reaction_delay_hours":1,
            "bandwidth_constrained":false,"total_cost_dollars":5.0,
            "total_energy_mwh":0.1,"total_overflow_hits":0,
            "delay_clamped_hours":0,"clusters":[{"label":"NY",
            "cost_dollars":5.0,"energy_mwh":0.1,"mean_utilization":0.5,
            "p95_hits_per_sec":10.0,"peak_hits_per_sec":12.0,
            "total_hits":100.0,"overflow_hits":0}],"mean_distance_km":1.0,
            "p99_distance_km":2.0,"distances":{"bin_km":25.0,
            "weights":[1.0],"total_weight":1.0,"weighted_sum":10.0}}"#;
        let report = SimulationReport::from_json(legacy).unwrap();
        assert_eq!(report.clusters[0].bandwidth_cap_hits_per_sec, None);
        assert_eq!(report.clusters[0].bandwidth_binding_hours, 0.0);
        assert_eq!(report.clusters[0].bandwidth_cost_dollars, 0.0);
        assert_eq!(report.total_bandwidth_binding_hours, 0.0);
        assert_eq!(report.total_bandwidth_cost_dollars, 0.0);
    }

    #[test]
    fn tiers_are_omitted_when_none_and_round_trip_when_not() {
        // Flat reports (tiers: None) must not mention the field, so
        // pre-hierarchy goldens stay byte-identical.
        let flat = dummy_report("x", &[10.0, 20.0]);
        let flat_json = flat.to_json();
        assert!(!flat_json.contains("tiers"), "flat reports carry no tiers field");
        assert_eq!(SimulationReport::from_json(&flat_json).unwrap(), flat);

        // A hierarchical report round-trips every tier node.
        let mut tree = dummy_report("y", &[10.0, 20.0]);
        tree.tiers = Some(TierRollup {
            metros: vec![TierNodeReport {
                label: "NYC".to_string(),
                sites: 2,
                cost_dollars: 30.0,
                energy_mwh: 0.5,
                total_hits: 2.0e9,
                overflow_hits: 0.0,
                rejected_hits: 0.0,
                mean_utilization: 0.3,
                cap_hits_per_sec: Some(5_000.0),
            }],
            regions: vec![TierNodeReport {
                label: "NYISO".to_string(),
                sites: 2,
                cost_dollars: 30.0,
                energy_mwh: 0.5,
                total_hits: 2.0e9,
                overflow_hits: 0.0,
                rejected_hits: 1.0,
                mean_utilization: 0.3,
                cap_hits_per_sec: None,
            }],
        });
        let json = tree.to_json();
        assert!(json.contains("\"tiers\":{\"metros\":"));
        assert!(json.contains("\"cap_hits_per_sec\":5000"));
        let back = SimulationReport::from_json(&json).unwrap();
        assert_eq!(back, tree);
        assert_eq!(back.tiers.as_ref().unwrap().regions[0].rejected_hits, 1.0);
        assert_eq!(back.tiers.as_ref().unwrap().regions[0].cap_hits_per_sec, None);
    }

    #[test]
    fn distance_histogram_mean_and_percentile() {
        let mut h = DistanceHistogram::new(10.0, 100);
        h.add(100.0, 1.0);
        h.add(200.0, 1.0);
        h.add(900.0, 2.0);
        let mean = h.mean_km().unwrap();
        assert!((mean - (100.0 + 200.0 + 1800.0) / 4.0).abs() < 1e-9);
        let p99 = h.percentile_km(99.0).unwrap();
        assert!((900.0..=920.0).contains(&p99));
        let p25 = h.percentile_km(25.0).unwrap();
        assert!(p25 <= 110.0);
        assert_eq!(h.total_weight(), 4.0);
    }

    #[test]
    fn distance_histogram_ignores_bad_samples() {
        let mut h = DistanceHistogram::default_resolution();
        h.add(f64::NAN, 1.0);
        h.add(100.0, -1.0);
        h.add(100.0, 0.0);
        assert_eq!(h.total_weight(), 0.0);
        assert!(h.mean_km().is_none());
        assert!(h.percentile_km(50.0).is_none());
    }

    #[test]
    fn distance_histogram_clamps_overflow_and_merges() {
        let mut a = DistanceHistogram::new(10.0, 10);
        a.add(5000.0, 1.0); // beyond the last bin -> clamped into it
        assert_eq!(a.percentile_km(100.0).unwrap(), 100.0);
        let mut b = DistanceHistogram::new(10.0, 10);
        b.add(15.0, 3.0);
        a.merge(&b);
        assert_eq!(a.total_weight(), 4.0);
        assert!(a.mean_km().unwrap() > 15.0);
    }
}
