//! Property-based proof that telemetry is *transparent*: running the same
//! simulation with telemetry fully on — spans recording, trace sink
//! appending JSONL events to a temp file — produces a [`SimulationReport`]
//! byte-identical (through the JSON encoding) to the telemetry-off run,
//! across policies, constraint regimes, and both execution topologies
//! (the flat batch driver and the sharded hierarchical replay).
//!
//! This is the contract that lets CI re-run every golden with
//! `WATTROUTE_TELEMETRY=1` and diff against the same fixtures: telemetry
//! observes the engine, it never steers it.
//!
//! Single-test binary: the enabled flag and the trace sink are process
//! globals, so this test must not share a process with tests that assume
//! telemetry is off (see the `[[test]]` entry in `Cargo.toml`).

use proptest::prelude::*;
use wattroute::hierarchy::HierarchicalReplay;
use wattroute::prelude::*;
use wattroute_market::time::{HourRange, SimHour};
use wattroute_obs::Telemetry;
use wattroute_routing::policy::RoutingPolicy;
use wattroute_workload::hierarchy::single_region_of;

fn window(days: u64) -> HourRange {
    let start = SimHour::from_date(2008, 12, 19);
    HourRange::new(start, start.plus_hours(days * 24))
}

fn policy_for(threshold: f64) -> Box<dyn RoutingPolicy> {
    if threshold < 0.0 {
        Box::new(AkamaiLikePolicy::default())
    } else {
        Box::new(PriceConsciousPolicy::with_distance_threshold(threshold))
    }
}

/// Run `f` with telemetry fully on: spans enabled and a JSONL trace sink
/// installed at a temp path. Restores the off state afterwards and
/// removes the trace file, returning how many event lines it held.
fn with_telemetry_on<T>(tag: &str, f: impl FnOnce() -> T) -> (T, usize) {
    let path =
        std::env::temp_dir().join(format!("wr_transparency_{tag}_{}.jsonl", std::process::id()));
    Telemetry::enable();
    Telemetry::trace_to(&path).expect("install trace sink");
    let result = f();
    Telemetry::trace_close();
    Telemetry::disable();
    let events = std::fs::read_to_string(&path).map_or(0, |text| text.lines().count());
    let _ = std::fs::remove_file(&path);
    (result, events)
}

proptest! {
    // Full-on telemetry (spans + trace sink) must not change a single
    // byte of the batch driver's report.
    #[test]
    fn batch_report_is_byte_identical_with_telemetry_on(
        seed in 0u64..500,
        days in 1u64..3,
        delay in 0u64..12,
        realloc in prop::sample::select(vec![1usize, 5, 12]),
        constrained in prop::sample::select(vec![false, true]),
        // -1 encodes the Akamai-like baseline policy.
        threshold in prop::sample::select(vec![-1.0f64, 0.0, 1500.0, f64::INFINITY]),
    ) {
        let mut scenario = Scenario::custom_window(seed, window(days));
        scenario.config = scenario
            .config
            .with_reaction_delay(delay)
            .with_reallocation_interval(realloc);
        if constrained {
            let caps = scenario.bandwidth_caps_from_baseline();
            scenario.config = scenario.config.with_bandwidth_caps(caps);
        }

        Telemetry::disable();
        let off = scenario.execute(&mut *policy_for(threshold), RunOptions::new());

        let (on, events) = with_telemetry_on("batch", || {
            scenario.execute(&mut *policy_for(threshold), RunOptions::new())
        });

        prop_assert_eq!(&off, &on, "telemetry changed the report");
        prop_assert_eq!(off.to_json_value().to_string(), on.to_json_value().to_string());
        prop_assert!(events > 0, "a fully-on run must have traced span events");
    }

    // Same transparency through the sharded hierarchical topology.
    #[test]
    fn hierarchical_replay_is_byte_identical_with_telemetry_on(
        seed in 0u64..300,
        days in 1u64..3,
        realloc in prop::sample::select(vec![1usize, 12]),
        threshold in prop::sample::select(vec![-1.0f64, 1500.0]),
    ) {
        let mut scenario = Scenario::custom_window(seed, window(days));
        scenario.config = scenario.config.with_reallocation_interval(realloc);
        let topology = single_region_of(&scenario.clusters);

        Telemetry::disable();
        let replay = HierarchicalReplay::new(
            &topology,
            &scenario.trace,
            &scenario.prices,
            scenario.config.clone(),
        );
        let off = replay.run_sharded(&move || policy_for(threshold));

        let (on, events) = with_telemetry_on("tree", || {
            replay.run_sharded(&move || policy_for(threshold))
        });

        prop_assert_eq!(&off, &on, "telemetry changed the sharded replay report");
        prop_assert_eq!(off.to_json_value().to_string(), on.to_json_value().to_string());
        prop_assert!(events > 0, "sharded replay must have traced span events");
    }
}
