//! Property-based determinism contracts for the Monte Carlo engine.
//!
//! Two pins from the module docs ([`wattroute::montecarlo`]):
//!
//! 1. an `n_paths = 1` run of path `k` is **bit-identical** to a direct
//!    [`Simulation`] replay of the prices a fresh [`PriceGenerator`] draws
//!    under [`path_seed`]`(master, k)` — the workspace-reuse machinery
//!    (engine snapshot restore, flat billing buffer, shared compiled
//!    preferences) must be invisible in the numbers;
//! 2. the aggregate [`SavingsDistribution`] is **byte-identical** across
//!    worker-thread counts — a path's prices depend only on
//!    `(model, master_seed, k, range)`, never on which thread drew them.

use proptest::prelude::*;
use wattroute::montecarlo::MonteCarlo;
use wattroute::prelude::*;
use wattroute_market::generator::{path_seed, PriceGenerator};
use wattroute_market::time::{HourRange, SimHour};

/// A window shorter than the largest sampled reaction delay, so the
/// lead-hour clamp is exercised; built without a [`Scenario`] because these
/// properties draw their own price paths and would waste a full price-set
/// generation per case.
fn day_window() -> HourRange {
    let start = SimHour::from_date(2008, 6, 1);
    HourRange::new(start, start.plus_hours(18))
}

fn workload(range: HourRange) -> (ClusterSet, Trace) {
    let clusters = ClusterSet::akamai_like_nine();
    let trace = SyntheticWorkloadConfig { seed: 11, ..Default::default() }.generate(range);
    (clusters, trace)
}

proptest! {
    #[test]
    fn single_path_reproduces_a_direct_simulation_replay(
        master in 0u64..512,
        k in 0u64..64,
        delay in 0u64..30,
        realloc in prop::sample::select(vec![1usize, 5, 12]),
    ) {
        let range = day_window();
        let (clusters, trace) = workload(range);
        let config = SimulationConfig::default()
            .with_reaction_delay(delay)
            .with_reallocation_interval(realloc);
        let model = MarketModel::calibrated().restricted_to(&clusters.hub_ids());

        // Reference: draw path k's prices directly and run the batch driver.
        let prices =
            PriceGenerator::new(model.clone(), path_seed(master, k)).realtime_hourly(range);
        let sim = Simulation::new(&clusters, &trace, &prices, config.clone());
        let optimized = sim.execute(
            &mut PriceConsciousPolicy::with_distance_threshold(1500.0),
            RunOptions::new(),
        );
        let baseline = sim.execute(&mut AkamaiLikePolicy::default(), RunOptions::new());

        let dist = MonteCarlo::new(&clusters, &trace, model, config, master)
            .with_paths(1)
            .with_first_path(k)
            .with_threads(1)
            .run();

        prop_assert_eq!(dist.per_path.len(), 1);
        let path = &dist.per_path[0];
        prop_assert_eq!(path.path, k);
        prop_assert_eq!(path.seed, path_seed(master, k));
        // Bit-for-bit, not approximately: the engine restores to a pristine
        // snapshot and the billing buffer indexes exactly like the table.
        prop_assert_eq!(path.cost_dollars, optimized.total_cost_dollars);
        prop_assert_eq!(path.baseline_cost_dollars, baseline.total_cost_dollars);
        prop_assert_eq!(path.savings_percent, optimized.savings_percent_vs(&baseline));
        prop_assert_eq!(
            path.unserved_hits,
            optimized.total_overflow_hits + optimized.total_rejected_hits
        );
        prop_assert_eq!(path.mean_distance_km, optimized.mean_distance_km);
        prop_assert_eq!(path.bandwidth_cost_dollars, optimized.total_bandwidth_cost_dollars);
        // One sample collapses every band statistic onto the one replay.
        prop_assert_eq!(dist.bill.p50, optimized.total_cost_dollars);
        prop_assert_eq!(dist.baseline_bill.p50, baseline.total_cost_dollars);
        prop_assert_eq!(dist.clusters.len(), optimized.clusters.len());
        for (band, cluster) in dist.clusters.iter().zip(&optimized.clusters) {
            prop_assert_eq!(&band.label, &cluster.label);
            prop_assert_eq!(band.cost.mean, cluster.cost_dollars);
        }
    }

    #[test]
    fn aggregate_json_is_invariant_to_worker_thread_count(
        master in 0u64..512,
        n_paths in 1usize..6,
        delay in 0u64..30,
    ) {
        let (clusters, trace) = workload(day_window());
        let config = SimulationConfig::default().with_reaction_delay(delay);
        let model = MarketModel::calibrated().restricted_to(&clusters.hub_ids());

        let run = |threads: usize| {
            MonteCarlo::new(&clusters, &trace, model.clone(), config.clone(), master)
                .with_paths(n_paths)
                .with_threads(threads)
                .run()
        };
        let serial = run(1);
        let parallel = run(4);
        prop_assert_eq!(&serial, &parallel, "distribution differs across thread counts");
        prop_assert_eq!(serial.to_json(), parallel.to_json());
    }
}
