//! Convergence smoke for the Monte Carlo estimator.
//!
//! The point of drawing paths is that the savings estimate *tightens* as
//! paths accumulate: the standard error of the mean savings percentage
//! shrinks like `1/√n`. This pins that trajectory on a fixed master seed —
//! quadrupling the path count 16 → 64 → 256 must shrink the 90% confidence
//! interval on the mean savings at every step (by roughly half each time,
//! were the per-path spread already converged).

use wattroute::montecarlo::MonteCarlo;
use wattroute::prelude::*;
use wattroute_market::time::SimHour;

#[test]
fn savings_confidence_interval_tightens_as_paths_quadruple() {
    let start = SimHour::from_date(2008, 6, 1);
    let scenario = Scenario::custom_window(42, HourRange::new(start, start.plus_hours(24)));
    let model = MarketModel::calibrated().restricted_to(&scenario.clusters.hub_ids());

    let ci_width = |paths: usize| {
        let dist = MonteCarlo::new(
            &scenario.clusters,
            &scenario.trace,
            model.clone(),
            scenario.config.clone(),
            2009,
        )
        .with_paths(paths)
        .run();
        assert_eq!(dist.per_path.len(), paths);
        dist.mean_savings_ci90_width().expect("two or more paths")
    };

    let w16 = ci_width(16);
    let w64 = ci_width(64);
    let w256 = ci_width(256);
    assert!(w16 > 0.0, "distinct price paths spread the savings estimate");
    assert!(w64 < w16, "64 paths must beat 16 ({w64} vs {w16})");
    assert!(w256 < w64, "256 paths must beat 64 ({w256} vs {w64})");
    // The prefix property makes the shrink structural, not luck: the first
    // 16 paths of the 256-path run are exactly the 16-path run.
    assert!(
        w256 < 0.5 * w16,
        "a 16× path budget must at least halve the CI width ({w256} vs {w16})"
    );
}
