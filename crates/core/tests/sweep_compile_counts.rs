//! Compile-count instrumentation test for the sweep artifact cache.
//!
//! This file intentionally holds a single `#[test]` so it runs as the only
//! code in its process: the build counters on [`BillingMatrix`],
//! [`PriceTable`] and [`CompiledPreferences`] are process-global, and any
//! concurrently running test that compiles price tables would make exact
//! assertions racy. Keep it that way — add further compile-count
//! scenarios inside this one test, not as siblings.

use wattroute::prelude::*;
use wattroute::run::RunOptions;
use wattroute::sweep::{CompiledArtifacts, ScenarioSweep};
use wattroute_market::price_table::{BillingMatrix, PriceTable};
use wattroute_market::time::SimHour;
use wattroute_routing::price_conscious::CompiledPreferences;
use wattroute_workload::ClusterSet;

/// A grid varying two deployments × two reaction delays × two policies
/// (eight runs) must compile each deployment's billing matrix and ranked
/// preference geometry exactly once, and one delayed view per
/// (deployment, delay) — runs themselves compile nothing.
#[test]
fn two_deployments_times_two_delays_compile_each_artifact_once() {
    let start = SimHour::from_date(2008, 12, 19);
    let scenario = Scenario::custom_window(23, HourRange::new(start, start.plus_hours(36)));
    let east = ClusterSet::new(
        scenario
            .clusters
            .clusters()
            .iter()
            .filter(|c| matches!(c.label.as_str(), "MA" | "NY" | "VA" | "NJ"))
            .cloned()
            .collect::<Vec<_>>(),
    );

    let mut sweep =
        ScenarioSweep::new(&scenario.clusters, &scenario.trace, &scenario.prices).with_threads(2);
    let east_id = sweep.add_deployment("east", &east);
    for dep in [0, east_id] {
        for delay in [0u64, 4] {
            let config = scenario.config.clone().with_reaction_delay(delay);
            sweep.add_point_on(dep, format!("pc:{dep}:{delay}"), config.clone(), || {
                PriceConsciousPolicy::with_distance_threshold(1500.0)
            });
            sweep.add_point_on(
                dep,
                format!("base:{dep}:{delay}"),
                config,
                AkamaiLikePolicy::default,
            );
        }
    }
    assert_eq!(sweep.len(), 8);

    let billing_before = BillingMatrix::build_count();
    let views_before = PriceTable::view_count();
    let prefs_before = CompiledPreferences::build_count();

    let report = sweep.execute(RunOptions::new());

    assert_eq!(report.runs.len(), 8);
    assert_eq!(
        BillingMatrix::build_count() - billing_before,
        2,
        "one billing matrix per deployment, shared across delays and runs"
    );
    assert_eq!(
        PriceTable::view_count() - views_before,
        4,
        "one delayed view per (deployment, delay)"
    );
    assert_eq!(
        CompiledPreferences::build_count() - prefs_before,
        2,
        "one ranked preference geometry per deployment, shared across all runs"
    );

    // The shared artifacts must not have changed results: spot-check one
    // cell against a fresh, per-run-compiled sequential simulation.
    let config = scenario.config.clone().with_reaction_delay(4);
    let sequential = Simulation::new(&east, &scenario.trace, &scenario.prices, config)
        .execute(&mut PriceConsciousPolicy::with_distance_threshold(1500.0), RunOptions::new());
    assert_eq!(report.get(&format!("pc:{east_id}:4")), Some(&sequential));

    // Scenario 2: a persistent cache across *sequences* of sweeps (what
    // the deployment optimizer does per search iteration). The first sweep
    // compiles both hub lists; a second sweep over the same deployments —
    // including a capacity-rescaled variant, which shares the nine-cluster
    // hub list — must compile nothing at all.
    let scaled = scenario.clusters.scaled(0.5);
    let build_sweep = |with_scaled: bool| {
        let mut sweep = ScenarioSweep::new(&scenario.clusters, &scenario.trace, &scenario.prices)
            .with_threads(2);
        let east_id = sweep.add_deployment("east", &east);
        sweep.add_point_on(0, "nine:pc", scenario.config.clone(), || {
            PriceConsciousPolicy::with_distance_threshold(1500.0)
        });
        sweep.add_point_on(east_id, "east:pc", scenario.config.clone(), || {
            PriceConsciousPolicy::with_distance_threshold(1500.0)
        });
        if with_scaled {
            let scaled_id = sweep.add_deployment("scaled", &scaled);
            sweep.add_point_on(scaled_id, "scaled:pc", scenario.config.clone(), || {
                PriceConsciousPolicy::with_distance_threshold(1500.0)
            });
        }
        sweep
    };

    let billing_before = BillingMatrix::build_count();
    let views_before = PriceTable::view_count();
    let prefs_before = CompiledPreferences::build_count();

    let mut cache = CompiledArtifacts::new();
    build_sweep(false).execute_streaming(RunOptions::new().reuse_artifacts(&mut cache), |_| {});
    assert_eq!(BillingMatrix::build_count() - billing_before, 2);
    assert_eq!(PriceTable::view_count() - views_before, 2);
    assert_eq!(CompiledPreferences::build_count() - prefs_before, 2);
    assert_eq!((cache.hub_list_hits(), cache.hub_list_misses()), (0, 2));

    build_sweep(true).execute_streaming(RunOptions::new().reuse_artifacts(&mut cache), |_| {});
    assert_eq!(
        BillingMatrix::build_count() - billing_before,
        2,
        "revisited hub lists (incl. the capacity-rescaled variant) must not recompile billing"
    );
    assert_eq!(
        PriceTable::view_count() - views_before,
        2,
        "revisited (hub list, delay) cells must not build new views"
    );
    assert_eq!(
        CompiledPreferences::build_count() - prefs_before,
        2,
        "revisited hub lists must not recompile preference geometry"
    );
    assert_eq!((cache.hub_list_hits(), cache.hub_list_misses()), (3, 2));

    // Scenario 3: constraints are run-state, not compiled geometry. A
    // calibrated constraint axis (three cap multipliers plus the
    // unconstrained regime, all over the default deployment at one delay)
    // must compile exactly one billing matrix, one preference geometry and
    // one delayed view — the constrained-vs-unconstrained dimension adds
    // zero compilation work.
    let calibrated = CalibratedScenario::calibrate(&scenario);
    let billing_before = BillingMatrix::build_count();
    let views_before = PriceTable::view_count();
    let prefs_before = CompiledPreferences::build_count();

    let mut sweep =
        ScenarioSweep::new(&scenario.clusters, &scenario.trace, &scenario.prices).with_threads(2);
    sweep.add_constraint_axis(
        0,
        "pc",
        scenario.config.clone(),
        [1.0, 1.1, 1.3, f64::INFINITY]
            .iter()
            .map(|&m| (format!("x{m}"), calibrated.constraints(&scenario.config.constraints, m))),
        || PriceConsciousPolicy::with_distance_threshold(1500.0),
    );
    assert_eq!(sweep.len(), 4);
    let report = sweep.execute(RunOptions::new());
    assert_eq!(report.runs.len(), 4);
    assert!(report.get("pc@x1").unwrap().bandwidth_constrained);
    assert!(!report.get("pc@xinf").unwrap().bandwidth_constrained);

    assert_eq!(
        BillingMatrix::build_count() - billing_before,
        1,
        "a constraint axis must not compile extra billing matrices"
    );
    assert_eq!(
        PriceTable::view_count() - views_before,
        1,
        "a constraint axis must not build extra delayed views"
    );
    assert_eq!(
        CompiledPreferences::build_count() - prefs_before,
        1,
        "a constraint axis must not recompile preference geometry"
    );
}
