//! Property-based guarantees for the hierarchical replay core.
//!
//! Three invariants, over random windows / seeds / reallocation intervals /
//! policies / tree shapes:
//!
//! 1. **Trivial embedding ≡ flat engine** — embedding a flat deployment as
//!    a one-region tree ([`single_region_of`]) and replaying it through
//!    [`HierarchicalReplay`] reproduces `Simulation::execute` **bit for
//!    bit**, struct-equal and byte-equal through the JSON encoding (the
//!    trivial embedding's report carries no `tiers`, so even the encoded
//!    text is identical).
//! 2. **Sharded ≡ sequential** — per-region worker threads change nothing:
//!    the merged report equals the sequential region loop's exactly.
//! 3. **Tier conservation** — [`TierLoads`] aggregation and the report's
//!    tier rollup conserve hits, energy and cost at every tier, whatever
//!    the tree shape, policy, or constraint regime.

use proptest::prelude::*;
use wattroute::hierarchy::HierarchicalReplay;
use wattroute::prelude::*;
use wattroute_geo::topology::Topology;
use wattroute_market::generator::PriceGenerator;
use wattroute_market::model::MarketModel;
use wattroute_market::time::{HourRange, SimHour};
use wattroute_routing::policy::RoutingPolicy;
use wattroute_workload::hierarchy::{single_region_of, TierLoads};

fn window(days: u64) -> HourRange {
    let start = SimHour::from_date(2008, 12, 19);
    HourRange::new(start, start.plus_hours(days * 24))
}

fn policy_for(threshold: f64) -> Box<dyn RoutingPolicy> {
    if threshold < 0.0 {
        Box::new(AkamaiLikePolicy::default())
    } else {
        Box::new(PriceConsciousPolicy::with_distance_threshold(threshold))
    }
}

proptest! {
    #[test]
    fn trivial_hierarchy_replays_bit_identical_to_the_flat_engine(
        seed in 0u64..500,
        days in 1u64..4,
        delay in 0u64..12,
        realloc in prop::sample::select(vec![1usize, 5, 12]),
        // -1 encodes the Akamai-like baseline policy.
        threshold in prop::sample::select(vec![-1.0f64, 0.0, 1500.0, f64::INFINITY]),
    ) {
        let mut scenario = Scenario::custom_window(seed, window(days));
        scenario.config = scenario
            .config
            .with_reaction_delay(delay)
            .with_reallocation_interval(realloc);

        let flat = scenario.execute(&mut *policy_for(threshold), RunOptions::new());

        let topology = single_region_of(&scenario.clusters);
        let replay = HierarchicalReplay::new(
            &topology,
            &scenario.trace,
            &scenario.prices,
            scenario.config.clone(),
        );
        let tree = replay.run(&move || policy_for(threshold));

        prop_assert!(tree.tiers.is_none(), "trivial embedding must not report tiers");
        prop_assert_eq!(&tree, &flat, "tree replay != flat engine");
        prop_assert_eq!(tree.to_json_value().to_string(), flat.to_json_value().to_string());
    }

    #[test]
    fn sharded_replay_is_bit_identical_to_sequential(
        seed in 0u64..500,
        n_sites in 30usize..120,
        slack in prop::sample::select(vec![f64::INFINITY, 1.2, 0.8]),
        realloc in prop::sample::select(vec![1usize, 12]),
        threshold in prop::sample::select(vec![-1.0f64, 1500.0]),
    ) {
        let mut topology = Topology::synthetic(seed, n_sites);
        if slack.is_finite() {
            topology = topology.with_tier_slack(slack);
        }
        let range = window(2);
        let trace = SyntheticWorkloadConfig::default().generate(range);
        let prices = PriceGenerator::new(MarketModel::calibrated(), seed ^ 0xF00D)
            .realtime_hourly(range);
        let config = SimulationConfig::default().with_reallocation_interval(realloc);

        let replay = HierarchicalReplay::new(&topology, &trace, &prices, config);
        let sequential = replay.run(&move || policy_for(threshold));
        let sharded = replay.run_sharded(&move || policy_for(threshold));

        prop_assert_eq!(&sequential, &sharded, "sharding changed the report");
        prop_assert_eq!(
            sequential.to_json_value().to_string(),
            sharded.to_json_value().to_string()
        );
    }

    #[test]
    fn tier_rollup_and_tier_loads_conserve_at_every_tier(
        seed in 0u64..500,
        n_sites in 30usize..100,
        slack in prop::sample::select(vec![f64::INFINITY, 1.5, 0.7]),
        threshold in prop::sample::select(vec![-1.0f64, 0.0, 1500.0]),
    ) {
        let mut topology = Topology::synthetic(seed, n_sites);
        if slack.is_finite() {
            topology = topology.with_tier_slack(slack);
        }
        let range = window(1);
        let trace = SyntheticWorkloadConfig::default().generate(range);
        let prices = PriceGenerator::new(MarketModel::calibrated(), seed ^ 0xBEEF)
            .realtime_hourly(range);

        let replay =
            HierarchicalReplay::new(&topology, &trace, &prices, SimulationConfig::default());
        let report = replay.run(&move || policy_for(threshold));

        // TierLoads conservation over the reported per-site hit volumes.
        let site_hits: Vec<f64> = report.clusters.iter().map(|c| c.total_hits).collect();
        let loads = TierLoads::aggregate(&topology, &site_hits);
        prop_assert!(
            loads.max_conservation_error(&topology) < 1e-9,
            "TierLoads lost volume between tiers"
        );

        // The report's rollup (present for any non-trivial tree) conserves
        // hits, energy and cost from sites through metros to regions.
        let tiers = report.tiers.as_ref().expect("non-trivial tree reports tiers");
        let scale = |x: f64| x.abs().max(1.0);
        for (name, site_total, metro_total, region_total) in [
            (
                "hits",
                site_hits.iter().sum::<f64>(),
                tiers.metros.iter().map(|m| m.total_hits).sum::<f64>(),
                tiers.regions.iter().map(|r| r.total_hits).sum::<f64>(),
            ),
            (
                "energy",
                report.clusters.iter().map(|c| c.energy_mwh).sum::<f64>(),
                tiers.metros.iter().map(|m| m.energy_mwh).sum::<f64>(),
                tiers.regions.iter().map(|r| r.energy_mwh).sum::<f64>(),
            ),
            (
                "cost",
                report.clusters.iter().map(|c| c.cost_dollars).sum::<f64>(),
                tiers.metros.iter().map(|m| m.cost_dollars).sum::<f64>(),
                tiers.regions.iter().map(|r| r.cost_dollars).sum::<f64>(),
            ),
        ] {
            prop_assert!(
                (metro_total - site_total).abs() / scale(site_total) < 1e-9,
                "{} not conserved site→metro: {} vs {}", name, metro_total, site_total
            );
            prop_assert!(
                (region_total - site_total).abs() / scale(site_total) < 1e-9,
                "{} not conserved site→region: {} vs {}", name, region_total, site_total
            );
        }
        prop_assert_eq!(
            tiers.regions.iter().map(|r| r.sites).sum::<usize>(),
            topology.num_sites()
        );
    }
}
