//! Property-based bit-identity between the batch driver and the tick core.
//!
//! For arbitrary windows, seeds, reaction delays, reallocation intervals
//! and constraint regimes, replaying a trace one [`SimulationEngine::tick`]
//! at a time must reproduce `Simulation::execute` **bit for bit** — and
//! must keep doing so when the run is interrupted at a random mid-trace
//! step by a snapshot that travels through its JSON wire encoding and is
//! restored into a *freshly built* engine (the daemon failover story).

use proptest::prelude::*;
use wattroute::engine::{DemandSlice, EngineSnapshot, PriceSlice, SimulationEngine};
use wattroute::json::JsonValue;
use wattroute::prelude::*;
use wattroute::report::SimulationReport;
use wattroute_market::time::{HourRange, SimHour};
use wattroute_routing::policy::RoutingPolicy;

/// Replay `sim`'s trace through a tick engine, snapshotting at `cut`
/// (step index), JSON-round-tripping the snapshot, and finishing the run
/// in a freshly built engine restored from the decoded snapshot.
fn tick_replay_with_handover(
    scenario: &Scenario,
    policy_a: &mut dyn RoutingPolicy,
    policy_b: &mut dyn RoutingPolicy,
    cut: usize,
) -> SimulationReport {
    let sim = Simulation::new(
        &scenario.clusters,
        &scenario.trace,
        &scenario.prices,
        scenario.config.clone(),
    );
    let table = sim.price_table();
    let trace = &scenario.trace;

    let mut engine =
        SimulationEngine::new(&scenario.clusters, &trace.states, scenario.config.clone())
            .with_clamped_lead_hours(table.clamped_lead_hours());
    for (i, step) in trace.steps().iter().enumerate().take(cut) {
        let hour = trace.step_hour(i);
        engine.tick(
            policy_a,
            PriceSlice::new(hour, table.delayed_at(hour).unwrap(), table.billing_at(hour).unwrap()),
            DemandSlice::new(&step.us_demand),
        );
    }

    // Hand over through the wire encoding into a brand-new engine (and a
    // brand-new policy instance — policy caches must not carry results).
    let encoded = engine.snapshot().to_json_value().to_string();
    let decoded = EngineSnapshot::from_json_value(&JsonValue::parse(&encoded).expect("valid json"))
        .expect("lossless snapshot");
    let mut resumed =
        SimulationEngine::new(&scenario.clusters, &trace.states, scenario.config.clone());
    resumed.restore(&decoded);

    for (i, step) in trace.steps().iter().enumerate().skip(cut) {
        let hour = trace.step_hour(i);
        resumed.tick(
            policy_b,
            PriceSlice::new(hour, table.delayed_at(hour).unwrap(), table.billing_at(hour).unwrap()),
            DemandSlice::new(&step.us_demand),
        );
    }
    resumed.report()
}

proptest! {
    #[test]
    fn tick_replay_with_snapshot_handover_is_bit_identical_to_batch(
        seed in 0u64..1000,
        days in 1u64..4,
        delay in 0u64..30,
        realloc in prop::sample::select(vec![1usize, 5, 12]),
        constrained in prop::sample::select(vec![false, true]),
        threshold in prop::sample::select(vec![0.0f64, 1500.0, f64::INFINITY]),
        cut_frac in 0.0f64..1.0,
    ) {
        let start = SimHour::from_date(2008, 12, 19);
        let mut scenario =
            Scenario::custom_window(seed, HourRange::new(start, start.plus_hours(days * 24)));
        scenario.config = scenario
            .config
            .with_reaction_delay(delay)
            .with_reallocation_interval(realloc);
        if constrained {
            let caps = scenario.bandwidth_caps_from_baseline();
            scenario.config = scenario.config.with_bandwidth_caps(caps);
        }

        let batch = scenario.execute(
            &mut PriceConsciousPolicy::with_distance_threshold(threshold),
            RunOptions::new(),
        );

        let cut = ((scenario.trace.num_steps() as f64) * cut_frac) as usize;
        let incremental = tick_replay_with_handover(
            &scenario,
            &mut PriceConsciousPolicy::with_distance_threshold(threshold),
            &mut PriceConsciousPolicy::with_distance_threshold(threshold),
            cut,
        );

        prop_assert_eq!(&batch, &incremental, "batch != tick replay (cut at step {})", cut);
        // Bit-for-bit through the JSON encoding as well.
        prop_assert_eq!(
            batch.to_json_value().to_string(),
            incremental.to_json_value().to_string()
        );
    }
}
