//! Compile-count instrumentation test for the Monte Carlo engine.
//!
//! This file intentionally holds a single `#[test]` so it runs as the only
//! code in its process: the build counters on [`BillingMatrix`],
//! [`PriceTable`] and [`CompiledPreferences`] are process-global, and any
//! concurrently running test that compiles artifacts would make exact
//! assertions racy. Keep it that way — add further Monte Carlo
//! compile-count scenarios inside this one test, not as siblings.

use wattroute::montecarlo::MonteCarlo;
use wattroute::prelude::*;
use wattroute_market::price_table::{BillingMatrix, PriceTable};
use wattroute_market::time::SimHour;
use wattroute_routing::price_conscious::CompiledPreferences;

/// A Monte Carlo run compiles the ranked preference geometry exactly once
/// (shared by every worker's policies) and *no* price artifacts at all —
/// paths fill a reused flat billing buffer, bypassing the
/// [`BillingMatrix`]/[`PriceTable`] pipeline entirely. Drawing more paths
/// on more threads changes nothing.
#[test]
fn monte_carlo_compiles_one_preference_geometry_and_zero_price_artifacts() {
    let start = SimHour::from_date(2008, 6, 1);
    let scenario = Scenario::custom_window(42, HourRange::new(start, start.plus_hours(24)));
    let model = MarketModel::calibrated().restricted_to(&scenario.clusters.hub_ids());
    let mc = |paths: usize, threads: usize| {
        MonteCarlo::new(
            &scenario.clusters,
            &scenario.trace,
            model.clone(),
            scenario.config.clone(),
            2009,
        )
        .with_paths(paths)
        .with_threads(threads)
        .run()
    };

    let billing_before = BillingMatrix::build_count();
    let views_before = PriceTable::view_count();
    let prefs_before = CompiledPreferences::build_count();

    let dist = mc(8, 2);
    assert_eq!(dist.per_path.len(), 8);

    assert_eq!(
        BillingMatrix::build_count() - billing_before,
        0,
        "Monte Carlo paths must not compile billing matrices"
    );
    assert_eq!(
        PriceTable::view_count() - views_before,
        0,
        "Monte Carlo paths must not build delayed price views"
    );
    assert_eq!(
        CompiledPreferences::build_count() - prefs_before,
        1,
        "one preference geometry per run, shared across workers and paths"
    );

    // Four times the paths, twice the workers: still one compile per run.
    let prefs_mid = CompiledPreferences::build_count();
    let wide = mc(32, 4);
    assert_eq!(wide.per_path.len(), 32);
    assert_eq!(
        BillingMatrix::build_count() - billing_before,
        0,
        "path count must not change billing compile counts"
    );
    assert_eq!(
        PriceTable::view_count() - views_before,
        0,
        "path count must not change view compile counts"
    );
    assert_eq!(
        CompiledPreferences::build_count() - prefs_mid,
        1,
        "path and worker counts must not change preference compile counts"
    );
}
