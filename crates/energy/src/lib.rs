//! Energy models from *Cutting the Electric Bill for Internet-Scale Systems*
//! (Qureshi et al., SIGCOMM 2009).
//!
//! * [`model`] — the cluster power model of §5.1 (adapted from Google's
//!   empirical study): fixed power, utilization-dependent variable power
//!   with the `2u − u^1.4` curve, PUE overhead, and the named parameter
//!   presets the paper sweeps in Figure 15;
//! * [`fleet`] — the back-of-the-envelope company-wide consumption and cost
//!   estimates of Figure 1;
//! * [`network`] — the per-packet router energy argument of §5.2 (why longer
//!   routes do not meaningfully increase energy);
//! * [`cost`] — turning power (W) and prices ($/MWh) into dollars.
//!
//! ```
//! use wattroute_energy::model::{ClusterPowerModel, EnergyModelParams};
//!
//! // A 2000-server cluster with Google-like elasticity at 30% utilization.
//! let model = ClusterPowerModel::new(EnergyModelParams::google_2009(), 2000);
//! let watts = model.power_watts(0.3);
//! assert!(watts > 0.0);
//! // An idle cluster still draws most of its peak power at this elasticity.
//! assert!(model.power_watts(0.0) > 0.5 * model.power_watts(1.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod fleet;
pub mod model;
pub mod network;

pub use cost::{energy_cost_dollars, mwh_from_watt_hours};
pub use fleet::{CompanyEstimate, FleetAssumptions};
pub use model::{ClusterPowerModel, EnergyModelParams};
pub use network::RouterEnergyModel;
