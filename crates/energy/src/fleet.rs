//! Company-scale electricity estimates (Figure 1 and §2.1 of the paper).
//!
//! The paper's Figure 1 is a table of back-of-the-envelope annual
//! electricity consumption and cost estimates for eBay, Akamai, Rackspace,
//! Microsoft and Google, computed from server counts, typical server powers,
//! average utilization and PUE:
//!
//! ```text
//! Energy in Wh ≈ n · (P_idle + (P_peak − P_idle)·U + (PUE − 1)·P_peak) · 365 · 24
//! ```
//!
//! This module implements that formula and embeds the assumptions the paper
//! states, so the Figure 1 rows can be regenerated.

use serde::{Deserialize, Serialize};

/// Hours in a (non-leap) year.
const HOURS_PER_YEAR: f64 = 365.0 * 24.0;

/// Assumptions for one company's fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetAssumptions {
    /// Company name (for reporting).
    pub name: String,
    /// Number of servers.
    pub servers: u64,
    /// Average peak power per server in watts.
    pub peak_watts: f64,
    /// Idle power as a fraction of peak.
    pub idle_fraction: f64,
    /// Average server utilization (0..1).
    pub average_utilization: f64,
    /// Facility PUE.
    pub pue: f64,
}

/// A computed Figure 1 row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompanyEstimate {
    /// Company name.
    pub name: String,
    /// Number of servers assumed.
    pub servers: u64,
    /// Estimated annual consumption in MWh.
    pub annual_mwh: f64,
    /// Estimated annual cost in dollars at the given wholesale rate.
    pub annual_cost_dollars: f64,
}

impl FleetAssumptions {
    /// The paper's §2.1 formula: average per-server power including facility
    /// overhead, in watts.
    pub fn average_server_watts(&self) -> f64 {
        let idle = self.peak_watts * self.idle_fraction;
        idle + (self.peak_watts - idle) * self.average_utilization
            + (self.pue - 1.0) * self.peak_watts
    }

    /// Estimated annual fleet consumption in MWh.
    pub fn annual_mwh(&self) -> f64 {
        self.servers as f64 * self.average_server_watts() * HOURS_PER_YEAR / 1.0e6
    }

    /// Estimate the annual bill at a wholesale price in $/MWh (the paper
    /// uses $60/MWh).
    pub fn estimate(&self, dollars_per_mwh: f64) -> CompanyEstimate {
        let annual_mwh = self.annual_mwh();
        CompanyEstimate {
            name: self.name.clone(),
            servers: self.servers,
            annual_mwh,
            annual_cost_dollars: annual_mwh * dollars_per_mwh,
        }
    }

    /// The assumptions behind Figure 1's rows. Shared assumptions from §2.1:
    /// 250 W peak servers (Akamai measurements), idle at ~70 % of peak,
    /// ~30 % average utilization and PUE 2.0 — except Google, modelled with
    /// 140 W servers and PUE 1.3 as the paper describes.
    pub fn figure_1_companies() -> Vec<FleetAssumptions> {
        let standard = |name: &str, servers: u64| FleetAssumptions {
            name: name.to_string(),
            servers,
            peak_watts: 250.0,
            idle_fraction: 0.70,
            average_utilization: 0.30,
            pue: 2.0,
        };
        vec![
            standard("eBay", 16_000),
            standard("Akamai", 40_000),
            standard("Rackspace", 50_000),
            standard("Microsoft", 200_000),
            FleetAssumptions {
                name: "Google".to_string(),
                servers: 500_000,
                peak_watts: 140.0,
                idle_fraction: 0.70,
                average_utilization: 0.30,
                pue: 1.3,
            },
        ]
    }

    /// The wholesale rate Figure 1 uses.
    pub const FIGURE_1_RATE_PER_MWH: f64 = 60.0;
}

/// Regenerate Figure 1: annual MWh and dollars for every company at the
/// paper's $60/MWh rate.
pub fn figure_1_rows() -> Vec<CompanyEstimate> {
    FleetAssumptions::figure_1_companies()
        .iter()
        .map(|f| f.estimate(FleetAssumptions::FIGURE_1_RATE_PER_MWH))
        .collect()
}

/// The independent Google cross-check from §2.1: comScore's ~1.2 billion
/// searches/day at Google's stated ~1 kJ per search works out to about
/// 1×10⁵ MWh per year for search alone.
pub fn google_search_energy_mwh_per_year(searches_per_day: f64, joules_per_search: f64) -> f64 {
    searches_per_day * joules_per_search * 365.0 / 3.6e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_1_magnitudes() {
        let rows = figure_1_rows();
        let by_name = |n: &str| rows.iter().find(|r| r.name == n).unwrap();

        // Paper: eBay ~0.6e5 MWh / ~$3.7M; Akamai ~1.7e5 MWh / ~$10M;
        // Rackspace ~2e5 MWh / ~$12M; Microsoft >6e5 MWh / >$36M;
        // Google >6.3e5 MWh / >$38M. Allow generous tolerances (these are
        // order-of-magnitude estimates by construction).
        let ebay = by_name("eBay");
        assert!(ebay.annual_mwh > 0.4e5 && ebay.annual_mwh < 0.9e5, "{}", ebay.annual_mwh);
        assert!(ebay.annual_cost_dollars > 2.5e6 && ebay.annual_cost_dollars < 6.0e6);

        let akamai = by_name("Akamai");
        assert!(akamai.annual_mwh > 1.2e5 && akamai.annual_mwh < 2.2e5, "{}", akamai.annual_mwh);
        assert!(akamai.annual_cost_dollars > 7.0e6 && akamai.annual_cost_dollars < 14.0e6);

        let rackspace = by_name("Rackspace");
        assert!(rackspace.annual_mwh > 1.5e5 && rackspace.annual_mwh < 2.8e5);

        let microsoft = by_name("Microsoft");
        assert!(microsoft.annual_mwh > 6.0e5, "{}", microsoft.annual_mwh);
        assert!(microsoft.annual_cost_dollars > 36.0e6);

        let google = by_name("Google");
        assert!(google.annual_mwh > 5.5e5 && google.annual_mwh < 8.0e5, "{}", google.annual_mwh);
        assert!(google.annual_cost_dollars > 33.0e6 && google.annual_cost_dollars < 48.0e6);
    }

    #[test]
    fn small_fleets_cost_less_than_large_ones() {
        // eBay < Akamai < Rackspace < {Microsoft, Google}. Microsoft and
        // Google are not mutually ordered: Google has far more servers but
        // much more efficient ones, and the paper simply bounds both from
        // below.
        let rows = figure_1_rows();
        let cost = |n: &str| rows.iter().find(|r| r.name == n).unwrap().annual_cost_dollars;
        assert!(cost("eBay") < cost("Akamai"));
        assert!(cost("Akamai") < cost("Rackspace"));
        assert!(cost("Rackspace") < cost("Microsoft"));
        assert!(cost("Rackspace") < cost("Google"));
    }

    #[test]
    fn average_watts_formula() {
        let f = FleetAssumptions {
            name: "test".into(),
            servers: 1,
            peak_watts: 100.0,
            idle_fraction: 0.5,
            average_utilization: 0.5,
            pue: 1.5,
        };
        // idle 50 + (100-50)*0.5 + 0.5*100 = 50 + 25 + 50 = 125 W.
        assert!((f.average_server_watts() - 125.0).abs() < 1e-9);
        // One server for a year: 125 * 8760 Wh ≈ 1.095 MWh.
        assert!((f.annual_mwh() - 1.095).abs() < 0.01);
    }

    #[test]
    fn three_percent_of_google_exceeds_a_million_dollars() {
        // §1: "A modest 3% reduction would therefore exceed a million
        // dollars every year."
        let google = figure_1_rows().into_iter().find(|r| r.name == "Google").unwrap();
        assert!(google.annual_cost_dollars * 0.03 > 1.0e6);
    }

    #[test]
    fn google_search_cross_check() {
        // 1.2B searches/day at 1 kJ each ≈ 1.2e5 MWh/yr (paper: ~1e5 MWh in 2007).
        let mwh = google_search_energy_mwh_per_year(1.2e9, 1000.0);
        assert!(mwh > 0.8e5 && mwh < 1.5e5, "{mwh}");
    }

    #[test]
    fn cost_scales_linearly_with_price() {
        let f = &FleetAssumptions::figure_1_companies()[0];
        let at_60 = f.estimate(60.0);
        let at_120 = f.estimate(120.0);
        assert!((at_120.annual_cost_dollars - 2.0 * at_60.annual_cost_dollars).abs() < 1e-6);
        assert_eq!(at_60.annual_mwh, at_120.annual_mwh);
    }
}
