//! Network (router) energy model — §5.2 "Increase in Routing Energy".
//!
//! Price-conscious routing sends some requests on longer network paths. The
//! paper argues the extra energy is negligible because the energy a packet
//! dissipates in a core router (~2 mJ total, ~50 µJ incremental) is many
//! orders of magnitude below the server-side energy per request (Google's
//! ~1 kJ per search). This module makes that argument computable so the
//! claim can be checked quantitatively and reported next to the savings.

use serde::{Deserialize, Serialize};

/// Per-router, per-packet energy parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouterEnergyModel {
    /// Average (amortised) energy per packet through a core router, in
    /// joules. The paper derives ~2 mJ from a Cisco GSR 12008 drawing 770 W
    /// at 540k packets/s.
    pub average_joules_per_packet: f64,
    /// Incremental (marginal) energy per additional packet, in joules
    /// (~50 µJ, because an idle router already draws ~97 % of peak).
    pub incremental_joules_per_packet: f64,
    /// Average packets per request (request + response packets for a typical
    /// CDN hit).
    pub packets_per_request: f64,
}

impl Default for RouterEnergyModel {
    fn default() -> Self {
        Self {
            average_joules_per_packet: 2.0e-3,
            incremental_joules_per_packet: 50.0e-6,
            packets_per_request: 20.0,
        }
    }
}

impl RouterEnergyModel {
    /// The paper's reference numbers for the Cisco GSR 12008: 770 W at
    /// 540 000 mid-sized packets per second.
    pub fn from_router_measurements(watts: f64, packets_per_second: f64) -> Self {
        assert!(watts > 0.0 && packets_per_second > 0.0);
        Self { average_joules_per_packet: watts / packets_per_second, ..Self::default() }
    }

    /// Marginal energy (J) added by pushing one request through `extra_hops`
    /// additional core routers.
    pub fn incremental_energy_per_request(&self, extra_hops: f64) -> f64 {
        self.incremental_joules_per_packet * self.packets_per_request * extra_hops.max(0.0)
    }

    /// Amortised (worst-case accounting) energy per request through
    /// `extra_hops` additional routers.
    pub fn amortised_energy_per_request(&self, extra_hops: f64) -> f64 {
        self.average_joules_per_packet * self.packets_per_request * extra_hops.max(0.0)
    }

    /// Ratio of the *amortised* extra routing energy to the server-side
    /// energy per request. The paper's argument is that this ratio is tiny
    /// even with generous assumptions.
    pub fn overhead_ratio(&self, extra_hops: f64, server_joules_per_request: f64) -> f64 {
        assert!(server_joules_per_request > 0.0);
        self.amortised_energy_per_request(extra_hops) / server_joules_per_request
    }

    /// Extra routing energy in MWh for a given number of rerouted requests.
    pub fn rerouting_energy_mwh(&self, requests: f64, extra_hops: f64) -> f64 {
        self.amortised_energy_per_request(extra_hops) * requests.max(0.0) / 3.6e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cisco_gsr_numbers_reproduce_two_millijoules() {
        let m = RouterEnergyModel::from_router_measurements(770.0, 540_000.0);
        assert!((m.average_joules_per_packet - 1.43e-3).abs() < 0.3e-3);
    }

    #[test]
    fn routing_overhead_is_negligible_vs_search_energy() {
        // Even 10 extra core-router hops of *amortised* energy are below 5%
        // of a 1 kJ search; the incremental energy is far smaller still.
        let m = RouterEnergyModel::default();
        let ratio = m.overhead_ratio(10.0, 1000.0);
        assert!(ratio < 0.05, "amortised overhead ratio {ratio}");
        let incremental = m.incremental_energy_per_request(10.0);
        assert!(incremental < 0.05, "incremental J per request {incremental}");
        assert!(incremental / 1000.0 < 1e-4);
    }

    #[test]
    fn energy_scales_with_hops_and_requests() {
        let m = RouterEnergyModel::default();
        assert_eq!(m.incremental_energy_per_request(0.0), 0.0);
        assert_eq!(m.incremental_energy_per_request(-3.0), 0.0);
        let one = m.rerouting_energy_mwh(1.0e9, 1.0);
        let four = m.rerouting_energy_mwh(1.0e9, 4.0);
        assert!((four - 4.0 * one).abs() < 1e-9);
        assert!(one > 0.0);
    }

    #[test]
    fn a_billion_rerouted_hits_is_small_in_mwh() {
        // A billion rerouted requests through 3 extra routers is well under
        // 100 MWh — compare Figure 1's company totals of 1e5..6e5 MWh.
        let m = RouterEnergyModel::default();
        let mwh = m.rerouting_energy_mwh(1.0e9, 3.0);
        assert!(mwh < 100.0, "got {mwh} MWh");
    }

    #[test]
    #[should_panic]
    fn zero_server_energy_rejected() {
        let _ = RouterEnergyModel::default().overhead_ratio(1.0, 0.0);
    }
}
