//! The cluster energy-consumption model of §5.1.
//!
//! ```text
//! P_cluster(u_t) = F(n) + V(u_t, n) + ε
//! F(n)           = n · (P_idle + (PUE − 1) · P_peak)
//! V(u_t, n)      = n · (P_peak − P_idle) · (2·u_t − u_t^r)        r = 1.4
//! ```
//!
//! The model is adapted from Google's warehouse-scale power study; the paper
//! adds the PUE term for cooling and distribution overhead. The absolute
//! values of `P_peak` and `P_idle` do not matter for the savings analysis —
//! what matters is the *energy elasticity* `P_cluster(0) / P_cluster(1)`.

use serde::{Deserialize, Serialize};

/// Parameters of the per-server power curve plus facility overhead.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModelParams {
    /// Average peak power of one server in watts.
    pub peak_watts: f64,
    /// Idle power as a fraction of peak (0.0 = perfectly energy
    /// proportional, 1.0 = no elasticity at all).
    pub idle_fraction: f64,
    /// Power usage effectiveness of the facility (≥ 1.0).
    pub pue: f64,
    /// Exponent `r` of the utilization curve; Google's empirical fit is 1.4,
    /// and `r = 1` gives the linear model the study also found reasonable.
    pub utilization_exponent: f64,
    /// Empirical correction constant ε in watts per cluster (small; the
    /// Google study's residual term).
    pub epsilon_watts: f64,
}

impl EnergyModelParams {
    /// Construct parameters with the default exponent (1.4) and zero ε.
    pub fn new(peak_watts: f64, idle_fraction: f64, pue: f64) -> Self {
        assert!(peak_watts > 0.0, "peak power must be positive");
        assert!((0.0..=1.0).contains(&idle_fraction), "idle fraction must be in [0,1]");
        assert!(pue >= 1.0, "PUE cannot be below 1.0");
        Self { peak_watts, idle_fraction, pue, utilization_exponent: 1.4, epsilon_watts: 0.0 }
    }

    /// "Optimistic future" preset: fully energy-proportional servers in a
    /// very efficient facility — (0 % idle, 1.1 PUE) in Figure 15.
    pub fn optimistic_future() -> Self {
        Self::new(250.0, 0.0, 1.1)
    }

    /// An intermediate preset used in Figure 15: (25 % idle, 1.3 PUE).
    pub fn improved_proportionality() -> Self {
        Self::new(250.0, 0.25, 1.3)
    }

    /// Another Figure 15 point: (33 % idle, 1.3 PUE).
    pub fn third_idle_efficient_facility() -> Self {
        Self::new(250.0, 0.33, 1.3)
    }

    /// Figure 15 point (33 % idle, 1.7 PUE).
    pub fn third_idle_typical_facility() -> Self {
        Self::new(250.0, 0.33, 1.7)
    }

    /// "Cutting-edge / Google" preset: (65 % idle, 1.3 PUE). §6.2 calls
    /// (60-65 % idle, 1.3 PUE) "Google's published elasticity level".
    pub fn google_2009() -> Self {
        Self::new(140.0, 0.65, 1.3)
    }

    /// "State of the art" preset: (65 % idle, 1.7 PUE).
    pub fn state_of_the_art_2009() -> Self {
        Self::new(250.0, 0.65, 1.7)
    }

    /// "Disabled power management" preset: (95 % idle, 2.0 PUE) — an
    /// off-the-shelf server drawing ~95 % of peak when idle in an average
    /// facility.
    pub fn no_power_management() -> Self {
        Self::new(250.0, 0.95, 2.0)
    }

    /// The named parameter sweep of Figure 15, in the order plotted:
    /// (idle %, PUE) = (0, 1.0), (0, 1.1), (25, 1.3), (33, 1.3), (33, 1.7),
    /// (65, 1.3), (65, 2.0).
    pub fn figure_15_sweep() -> Vec<(String, Self)> {
        let mk = |idle: f64, pue: f64| Self::new(250.0, idle, pue);
        vec![
            ("(0%, 1.0)".to_string(), mk(0.0, 1.0)),
            ("(0%, 1.1)".to_string(), mk(0.0, 1.1)),
            ("(25%, 1.3)".to_string(), mk(0.25, 1.3)),
            ("(33%, 1.3)".to_string(), mk(0.33, 1.3)),
            ("(33%, 1.7)".to_string(), mk(0.33, 1.7)),
            ("(65%, 1.3)".to_string(), mk(0.65, 1.3)),
            ("(65%, 2.0)".to_string(), mk(0.65, 2.0)),
        ]
    }

    /// Idle power of one server in watts.
    pub fn idle_watts(&self) -> f64 {
        self.peak_watts * self.idle_fraction
    }

    /// A copy of these parameters with the linear (`r = 1`) utilization
    /// curve, for the ablation discussed in §5.1.
    pub fn with_linear_curve(mut self) -> Self {
        self.utilization_exponent = 1.0;
        self
    }
}

/// The power model for a whole cluster of `n` servers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterPowerModel {
    /// Per-server parameters and facility overhead.
    pub params: EnergyModelParams,
    /// Number of servers in the cluster.
    pub servers: u32,
}

impl ClusterPowerModel {
    /// Create a model for a cluster of `servers` machines.
    pub fn new(params: EnergyModelParams, servers: u32) -> Self {
        Self { params, servers }
    }

    /// Fixed power `F(n)` in watts: idle draw plus facility overhead.
    pub fn fixed_watts(&self) -> f64 {
        let p = &self.params;
        self.servers as f64 * (p.idle_watts() + (p.pue - 1.0) * p.peak_watts)
    }

    /// Variable power `V(u, n)` in watts at utilization `u` (clamped to
    /// `[0, 1]`).
    pub fn variable_watts(&self, utilization: f64) -> f64 {
        let p = &self.params;
        let u = utilization.clamp(0.0, 1.0);
        let curve = 2.0 * u - u.powf(p.utilization_exponent);
        self.servers as f64 * (p.peak_watts - p.idle_watts()) * curve
    }

    /// Total cluster power in watts at utilization `u`.
    pub fn power_watts(&self, utilization: f64) -> f64 {
        self.fixed_watts() + self.variable_watts(utilization) + self.params.epsilon_watts
    }

    /// Energy in watt-hours consumed over `hours` at utilization `u`.
    pub fn energy_watt_hours(&self, utilization: f64, hours: f64) -> f64 {
        assert!(hours >= 0.0, "duration must be non-negative");
        self.power_watts(utilization) * hours
    }

    /// The energy elasticity `P(0) / P(1)` — the quantity §5.1 identifies as
    /// "critical in determining the savings that can be achieved". 1.0 means
    /// completely inelastic; 0.0 means perfectly proportional.
    pub fn elasticity_ratio(&self) -> f64 {
        let peak = self.power_watts(1.0);
        if peak <= 0.0 {
            return 1.0;
        }
        self.power_watts(0.0) / peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() < eps
    }

    #[test]
    fn fixed_power_formula() {
        // 100 servers, 200W peak, 50% idle, PUE 1.5:
        // F = 100 * (100 + 0.5*200) = 20_000 W.
        let m = ClusterPowerModel::new(EnergyModelParams::new(200.0, 0.5, 1.5), 100);
        assert!(close(m.fixed_watts(), 20_000.0, 1e-9));
    }

    #[test]
    fn variable_power_curve_endpoints() {
        let m = ClusterPowerModel::new(EnergyModelParams::new(200.0, 0.5, 1.0), 10);
        // At u=0 the variable term vanishes; at u=1 it is n*(Ppeak-Pidle).
        assert_eq!(m.variable_watts(0.0), 0.0);
        assert!(close(m.variable_watts(1.0), 10.0 * 100.0, 1e-9));
    }

    #[test]
    fn superlinear_curve_front_loads_power() {
        // 2u - u^1.4 exceeds u for intermediate utilizations: the machine
        // draws proportionally more power at moderate load.
        let m = ClusterPowerModel::new(EnergyModelParams::new(200.0, 0.0, 1.0), 1);
        let half = m.variable_watts(0.5);
        let linear_half = 0.5 * m.variable_watts(1.0);
        assert!(half > linear_half);
    }

    #[test]
    fn linear_variant_matches_at_r_equals_one() {
        let params = EnergyModelParams::new(250.0, 0.6, 1.3).with_linear_curve();
        let m = ClusterPowerModel::new(params, 50);
        // With r = 1, V(u) = n*(Ppeak-Pidle)*u exactly.
        let u = 0.37;
        assert!(close(m.variable_watts(u), 50.0 * (250.0 - 150.0) * u, 1e-9));
    }

    #[test]
    fn power_is_monotone_in_utilization() {
        let m = ClusterPowerModel::new(EnergyModelParams::google_2009(), 500);
        let mut last = m.power_watts(0.0);
        for i in 1..=20 {
            let p = m.power_watts(i as f64 / 20.0);
            assert!(p >= last - 1e-9, "power should not fall as load rises");
            last = p;
        }
    }

    #[test]
    fn utilization_is_clamped() {
        let m = ClusterPowerModel::new(EnergyModelParams::google_2009(), 500);
        assert_eq!(m.power_watts(-0.5), m.power_watts(0.0));
        assert_eq!(m.power_watts(1.5), m.power_watts(1.0));
    }

    #[test]
    fn elasticity_of_named_presets() {
        // Fully proportional server in a PUE-1.0 facility: idle power is zero.
        let ideal = ClusterPowerModel::new(EnergyModelParams::new(250.0, 0.0, 1.0), 100);
        assert!(close(ideal.elasticity_ratio(), 0.0, 1e-9));

        // The paper: state-of-the-art systems idle around 60% of peak; with
        // facility overhead the cluster-level ratio is even higher.
        let google = ClusterPowerModel::new(EnergyModelParams::google_2009(), 100);
        assert!(google.elasticity_ratio() > 0.6 && google.elasticity_ratio() < 0.9);

        let none = ClusterPowerModel::new(EnergyModelParams::no_power_management(), 100);
        assert!(none.elasticity_ratio() > 0.9);

        // Monotone across the Figure 15 sweep.
        let sweep = EnergyModelParams::figure_15_sweep();
        let ratios: Vec<f64> =
            sweep.iter().map(|(_, p)| ClusterPowerModel::new(*p, 100).elasticity_ratio()).collect();
        for w in ratios.windows(2) {
            assert!(w[0] <= w[1] + 1e-9, "sweep should be ordered by inelasticity: {ratios:?}");
        }
    }

    #[test]
    fn figure_15_sweep_has_seven_points() {
        let sweep = EnergyModelParams::figure_15_sweep();
        assert_eq!(sweep.len(), 7);
        assert_eq!(sweep[0].0, "(0%, 1.0)");
        assert_eq!(sweep[6].0, "(65%, 2.0)");
    }

    #[test]
    fn energy_accumulates_over_time() {
        let m = ClusterPowerModel::new(EnergyModelParams::google_2009(), 1000);
        let one_hour = m.energy_watt_hours(0.3, 1.0);
        let day = m.energy_watt_hours(0.3, 24.0);
        assert!(close(day, one_hour * 24.0, 1e-6));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_rejected() {
        let m = ClusterPowerModel::new(EnergyModelParams::google_2009(), 10);
        let _ = m.energy_watt_hours(0.5, -1.0);
    }

    #[test]
    #[should_panic(expected = "PUE")]
    fn sub_unity_pue_rejected() {
        let _ = EnergyModelParams::new(250.0, 0.5, 0.9);
    }

    #[test]
    #[should_panic(expected = "idle fraction")]
    fn bad_idle_fraction_rejected() {
        let _ = EnergyModelParams::new(250.0, 1.5, 1.3);
    }

    #[test]
    fn zero_server_cluster_draws_only_epsilon() {
        let mut params = EnergyModelParams::google_2009();
        params.epsilon_watts = 12.0;
        let m = ClusterPowerModel::new(params, 0);
        assert!(close(m.power_watts(0.7), 12.0, 1e-9));
        assert_eq!(m.elasticity_ratio(), 1.0);
    }
}
