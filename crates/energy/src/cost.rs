//! Converting energy and prices into dollars.
//!
//! The simulator accumulates cluster energy in watt-hours per hour and
//! multiplies by that hour's locational price in $/MWh. These helpers keep
//! the unit conversions in one audited place.

/// Convert watt-hours to megawatt-hours.
pub fn mwh_from_watt_hours(watt_hours: f64) -> f64 {
    watt_hours / 1.0e6
}

/// Cost in dollars of consuming `watt_hours` at `dollars_per_mwh`.
///
/// Negative prices are passed through: consuming during a negative-price
/// hour *reduces* the bill, which is exactly the §2.2 observation that
/// consuming at certain times/places can improve overall grid efficiency.
pub fn energy_cost_dollars(watt_hours: f64, dollars_per_mwh: f64) -> f64 {
    assert!(watt_hours >= 0.0, "energy consumed cannot be negative");
    mwh_from_watt_hours(watt_hours) * dollars_per_mwh
}

/// Cost of running a load of `watts` for `hours` at `dollars_per_mwh`.
pub fn power_cost_dollars(watts: f64, hours: f64, dollars_per_mwh: f64) -> f64 {
    assert!(hours >= 0.0, "duration cannot be negative");
    energy_cost_dollars(watts.max(0.0) * hours, dollars_per_mwh)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversion() {
        assert_eq!(mwh_from_watt_hours(1.0e6), 1.0);
        assert_eq!(mwh_from_watt_hours(0.0), 0.0);
    }

    #[test]
    fn megawatt_hour_at_sixty_dollars() {
        // 1 MW for one hour at $60/MWh costs $60 — the paper's reference rate.
        assert!((power_cost_dollars(1.0e6, 1.0, 60.0) - 60.0).abs() < 1e-9);
    }

    #[test]
    fn negative_prices_reduce_cost() {
        let cost = energy_cost_dollars(2.0e6, -10.0);
        assert!((cost + 20.0).abs() < 1e-9);
    }

    #[test]
    fn cost_is_linear_in_energy_and_price() {
        let base = energy_cost_dollars(5.0e5, 40.0);
        assert!((energy_cost_dollars(1.0e6, 40.0) - 2.0 * base).abs() < 1e-9);
        assert!((energy_cost_dollars(5.0e5, 80.0) - 2.0 * base).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cannot be negative")]
    fn negative_energy_rejected() {
        let _ = energy_cost_dollars(-1.0, 60.0);
    }

    #[test]
    fn negative_power_clamped() {
        assert_eq!(power_cost_dollars(-100.0, 1.0, 60.0), 0.0);
    }
}
