//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` trait names and the matching
//! no-op derive macros so that `use serde::{Deserialize, Serialize}` and
//! `#[derive(Serialize, Deserialize)]` compile without network access.
//! No serialization machinery is implemented; the workspace does not
//! serialize anything yet. See `vendor/serde_derive` for the swap-out plan.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
