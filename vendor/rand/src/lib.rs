//! Offline stand-in for the parts of `rand` 0.8 this workspace uses.
//!
//! The build environment has no crates.io access, so this crate implements
//! the API surface the workspace calls — `rngs::StdRng`, `SeedableRng::
//! seed_from_u64`, and the `Rng` methods `gen`, `gen_range` and `gen_bool`
//! — on top of a seeded xoshiro256** generator. Output streams differ from
//! the real `StdRng` (which is ChaCha12), but every consumer in the
//! workspace treats the generator as an opaque seeded source, so only
//! determinism and statistical quality matter, and xoshiro256** provides
//! both.

#![forbid(unsafe_code)]

/// A generator seedable from a `u64`, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`], mirroring the
/// `Standard` distribution of the real crate.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Rejection-free multiply-shift; bias is < 2^-64 * span,
                // irrelevant for simulation workloads.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + hi as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == end {
                    return start;
                }
                let span = (end as u128).wrapping_sub(start as u128) as u64;
                let hi = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                (start as i128 + hi as i128) as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The subset of `rand::Rng` used by the workspace.
pub trait Rng {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draw a value from the standard distribution of `T` (`[0, 1)` for
    /// floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic seeded generator (xoshiro256**). Stands in for
    /// `rand::rngs::StdRng`; streams differ from the real ChaCha12-based
    /// `StdRng`, but seeding is just as deterministic.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let i = rng.gen_range(0usize..7);
            seen[i] = true;
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }
}
