//! Offline stand-in for `serde_derive`.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the real `serde`/`serde_derive` cannot be fetched. Nothing in the
//! workspace actually serializes data yet — the `#[derive(Serialize,
//! Deserialize)]` attributes only declare intent — so these derives expand
//! to an empty token stream. Swapping in the real serde later requires no
//! source changes: delete the `vendor/serde*` crates and repoint
//! `[workspace.dependencies]` at crates.io.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
