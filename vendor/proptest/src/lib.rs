//! Offline stand-in for the parts of `proptest` this workspace uses.
//!
//! The build environment has no crates.io access, so this crate implements
//! the `proptest!` macro, the [`strategy::Strategy`] trait with ranges,
//! tuples, `prop_map`, `prop::sample::select` and `prop::collection::vec`,
//! plus `prop_assert!`/`prop_assert_eq!`. Each property runs a fixed
//! number of deterministically seeded random cases (seeded from the test
//! name, so failures reproduce). There is no shrinking: a failing case
//! panics with the sampled values left to the assertion message.

#![forbid(unsafe_code)]

/// Number of random cases each property is checked against.
pub const CASES: u32 = 128;

/// Deterministic test RNG (xoshiro-free, SplitMix64 is plenty here).
pub mod test_runner {
    pub use crate::CASES;

    /// SplitMix64 generator seeded from the property name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test identifier (FNV-1a hash).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform index in `[0, n)`; `n` must be non-zero.
        pub fn index(&mut self, n: usize) -> usize {
            assert!(n > 0, "cannot sample from an empty collection");
            ((self.next_u64() as u128 * n as u128) >> 64) as usize
        }
    }
}

/// Strategies: composable descriptions of how to sample a value.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A sampleable value source, mirroring `proptest::strategy::Strategy`.
    pub trait Strategy {
        /// The type of sampled values.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform sampled values with a pure function.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end - self.start) as usize;
                    self.start + rng.index(span) as $t
                }
            }
        )*};
    }
    int_strategy!(usize, u64, u32, i64, i32);

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy!((A, B)(A, B, C)(A, B, C, D));
}

/// The `prop::` namespace (`prop::sample`, `prop::collection`).
pub mod prop {
    /// Sampling from explicit collections.
    pub mod sample {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy choosing uniformly from a fixed set of values.
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            items: Vec<T>,
        }

        /// Choose uniformly from `items`, mirroring `prop::sample::select`.
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select requires a non-empty collection");
            Select { items }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn sample(&self, rng: &mut TestRng) -> T {
                self.items[rng.index(self.items.len())].clone()
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy producing vectors of sampled elements.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: core::ops::Range<usize>,
        }

        /// Vectors of `element` with a length drawn from `size`, mirroring
        /// `prop::collection::vec`.
        pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "cannot sample empty length range");
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = self.size.end - self.size.start;
                let len = self.size.start + rng.index(span);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Assert inside a property; panics (no shrinking) with the condition text.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Define property tests: each `fn` runs [`CASES`] deterministically seeded
/// random cases of its sampled arguments.
#[macro_export]
macro_rules! proptest {
    ($(
        #[$meta:meta]
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        #[$meta]
        fn $name() {
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for _ in 0..$crate::CASES {
                $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 0.0f64..1.0, (a, b) in (0usize..5, -1.0f64..1.0)) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!(a < 5);
            prop_assert!((-1.0..1.0).contains(&b));
        }

        #[test]
        fn map_select_and_vec(
            y in (0.0f64..2.0).prop_map(|v| v * 10.0),
            pick in prop::sample::select(vec![1u64, 3, 7]),
            xs in prop::collection::vec(0.0f64..1.0, 1..20),
        ) {
            prop_assert!((0.0..20.0).contains(&y));
            prop_assert!(pick == 1 || pick == 3 || pick == 7);
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
