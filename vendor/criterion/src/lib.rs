//! Offline stand-in for the parts of `criterion` this workspace uses.
//!
//! The build environment has no crates.io access, so this crate provides
//! the `criterion_group!`/`criterion_main!` macros, `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher` and `black_box` with plain
//! wall-clock measurement: each benchmark is warmed up once, then timed
//! over enough iterations to fill a small measurement window, and the
//! mean per-iteration time is printed. No statistics, plotting or HTML
//! reports — swap in the real criterion by repointing
//! `[workspace.dependencies]` once a registry is available.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    measurement_window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { measurement_window: Duration::from_millis(200) }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { criterion: self }
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher { window: self.measurement_window, report: None };
        f(&mut bencher);
        match bencher.report {
            Some(r) => println!("  {name}: {r}"),
            None => println!("  {name}: (no iter() call)"),
        }
        self
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in sizes its sample by
    /// wall-clock window instead of sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run a single named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.criterion.bench_function(name, f);
        self
    }

    /// Run a parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.criterion.bench_function(&id.0, |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// A benchmark identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Build an id from a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self(format!("{function_name}/{parameter}"))
    }
}

/// Timing harness handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    window: Duration,
    report: Option<String>,
}

impl Bencher {
    /// Time `routine`, first warming up, then iterating until the
    /// measurement window is filled.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        let mut iters: u64 = 0;
        let start = Instant::now();
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= self.window {
                break;
            }
        }
        let per_iter = start.elapsed().as_secs_f64() / iters as f64;
        self.report = Some(format!("{} per iter ({iters} iters)", format_seconds(per_iter)));
    }
}

fn format_seconds(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Mirror of `criterion::criterion_group!`: bundles benchmark functions
/// into a single runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirror of `criterion::criterion_main!`: generates `fn main` running the
/// given groups (benchmark targets use `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_report() {
        let mut c = Criterion { measurement_window: Duration::from_millis(1) };
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion { measurement_window: Duration::from_millis(1) };
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }
}
